"""The asyncio TCP front end over one :class:`IngestPipeline`.

One :class:`StreamServer` accepts any number of concurrent connections;
each connection is a coroutine reading line-protocol requests (see
:mod:`repro.service.protocol`) and answering from the shared pipeline.
Updates flow through ``pipeline.submit`` — when the pipeline's bounded
queue is full the handler awaits, the handler stops reading its socket,
and TCP flow control pushes the backpressure all the way to the
producer.  Queries are answered inline from the consistent
between-batches view.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError
from repro.service import protocol
from repro.service.pipeline import IngestPipeline


class StreamServer:
    """Serve one ingest pipeline over a TCP line protocol.

    Parameters
    ----------
    pipeline:
        The (started) :class:`IngestPipeline` to serve.
    host, port:
        Bind address.  Port 0 (the default) picks a free port; read the
        bound one from :attr:`port` after :meth:`start`.
    """

    def __init__(
        self, pipeline: IngestPipeline, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._pipeline = pipeline
        self._host = host
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def pipeline(self) -> IngestPipeline:
        return self._pipeline

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "StreamServer":
        """Bind and begin accepting connections; returns self."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._requested_port,
                limit=protocol.MAX_LINE_BYTES,
            )
        return self

    async def stop(self) -> None:
        """Stop accepting and close active connections (pipeline untouched).

        Open connections are closed explicitly: ``Server.close()`` only
        stops *accepting*, and on Python >= 3.12 ``wait_closed()`` waits
        for every connection handler — an idle client blocked in
        ``readline`` would hang shutdown forever otherwise.
        """
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "StreamServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(b"ERR request line too long\n")
                    break
                if not line:
                    break
                reply, close = await self._dispatch(line, reader)
                writer.write(reply)
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._connections.discard(writer)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            writer.close()

    async def _dispatch(
        self, line: bytes, reader: asyncio.StreamReader
    ) -> tuple[bytes, bool]:
        """One request in, ``(response line, close connection?)`` out.

        Most errors leave the connection open.  ``BIN`` framing errors
        close it: once the client has started shipping a binary payload
        the server cannot tell where the next command begins, so
        resynchronizing is impossible — better a clean close than
        parsing payload bytes as commands.
        """
        pipeline = self._pipeline
        try:
            text = line.decode("ascii").strip()
        except UnicodeDecodeError:
            return b"ERR request is not ASCII\n", False
        if not text:
            return b"ERR empty request\n", False
        command, *args = text.split()
        command = command.upper()
        try:
            if command == "PING":
                return b"PONG\n", False
            if command == "QUIT":
                return b"BYE\n", True
            if command == "UPDATE":
                if len(args) not in (1, 2):
                    return b"ERR usage: UPDATE <item> [weight]\n", False
                weight = float(args[1]) if len(args) == 2 else 1.0
                await pipeline.update(int(args[0]), weight)
                return b"OK\n", False
            if command == "BATCH":
                if not args:
                    return b"ERR usage: BATCH <item>:<weight> ...\n", False
                items, weights = protocol.parse_batch_args(args)
                await pipeline.submit(items, weights)
                return f"OK {len(items)}\n".encode("ascii"), False
            if command == "BIN":
                try:
                    count = int(args[0]) if len(args) == 1 else -1
                except ValueError:
                    count = -1
                if not 0 < count <= protocol.MAX_BIN_ITEMS:
                    # The payload may already be in flight and cannot be
                    # skipped safely (its length is untrusted): close.
                    return (
                        f"ERR BIN count must be in "
                        f"[1, {protocol.MAX_BIN_ITEMS}]; closing\n"
                        .encode("ascii"),
                        True,
                    )
                payload = await reader.readexactly(16 * count)
                try:
                    items, weights = protocol.decode_bin_payload(payload, count)
                    await pipeline.submit(items, weights)
                except (ReproError, ValueError, OverflowError) as exc:
                    # Payload fully consumed: the stream is still in
                    # sync, the connection can live on.
                    return f"ERR {exc}\n".encode("ascii", "replace"), False
                return f"OK {count}\n".encode("ascii"), False
            if command == "EST":
                if len(args) != 1:
                    return b"ERR usage: EST <item>\n", False
                estimate = pipeline.estimate(int(args[0]))
                return f"OK {estimate:.17g}\n".encode("ascii"), False
            if command == "BOUNDS":
                if len(args) != 1:
                    return b"ERR usage: BOUNDS <item>\n", False
                item = int(args[0])
                return (
                    f"OK {pipeline.lower_bound(item):.17g} "
                    f"{pipeline.estimate(item):.17g} "
                    f"{pipeline.upper_bound(item):.17g}\n"
                ).encode("ascii"), False
            if command == "HH":
                if len(args) != 1:
                    return b"ERR usage: HH <phi>\n", False
                rows = pipeline.heavy_hitters(float(args[0]))
                body = " ".join(f"{row.item}:{row.estimate:.17g}" for row in rows)
                sep = " " if body else ""
                return f"OK {len(rows)}{sep}{body}\n".encode("ascii"), False
            if command == "STATS":
                sketch = pipeline.sketch
                payload = {
                    "applied_seq": pipeline.applied_seq,
                    "pending_items": pipeline.pending_items,
                    "stream_weight": sketch.stream_weight,
                    "num_active": getattr(sketch, "num_active", None),
                    "maximum_error": sketch.maximum_error,
                    **pipeline.stats.as_dict(),
                }
                return f"OK {json.dumps(payload)}\n".encode("ascii"), False
            if command == "SNAPSHOT":
                pipeline.snapshot_now()
                return f"OK {pipeline.applied_seq}\n".encode("ascii"), False
            return f"ERR unknown command {command}\n".encode("ascii"), False
        except asyncio.IncompleteReadError:
            raise ConnectionResetError("client vanished mid BIN frame")
        except (ReproError, ValueError, OverflowError) as exc:
            return f"ERR {exc}\n".encode("ascii", errors="replace"), False
