"""The asyncio TCP front end over one :class:`IngestPipeline`.

One :class:`StreamServer` accepts any number of concurrent connections;
each connection is a coroutine reading line-protocol requests (see
:mod:`repro.service.protocol`) and answering from the shared pipeline.
Updates flow through ``pipeline.submit`` — when the pipeline's bounded
queue is full the handler awaits, the handler stops reading its socket,
and TCP flow control pushes the backpressure all the way to the
producer.  Queries are answered inline from the consistent
between-batches view.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError
from repro.service import protocol
from repro.service.pipeline import IngestPipeline
from repro.service.pipeline import MAX_RESUME_SESSIONS  # noqa: F401  (re-export)


class StreamServer:
    """Serve one ingest pipeline over a TCP line protocol.

    Parameters
    ----------
    pipeline:
        The (started) :class:`IngestPipeline` to serve.
    host, port:
        Bind address.  Port 0 (the default) picks a free port; read the
        bound one from :attr:`port` after :meth:`start`.
    replication:
        An optional :class:`~repro.service.replication.
        ReplicationManager`: with one attached, ``REPL HELLO`` switches
        a connection into the leader's frame stream.
    follower:
        An optional :class:`~repro.service.replication.FollowerService`
        when this server fronts a read replica; enables ``REPL
        PROMOTE`` and enriches ``REPL STATUS``.
    coordinator:
        An optional :class:`~repro.service.failover.FailoverCoordinator`;
        with one attached the server routes ``REPL ELECT`` / ``REPL
        LEADER`` / ``REPL PEERS`` to it and ``REPL PROMOTE`` becomes an
        epoch-bumping operator override.
    """

    def __init__(
        self, pipeline: IngestPipeline, host: str = "127.0.0.1", port: int = 0,
        *, replication=None, follower=None, coordinator=None,
    ) -> None:
        self._pipeline = pipeline
        self._host = host
        self._requested_port = port
        # Default to the pipeline's own manager: a server is replication-
        # capable whenever its pipeline publishes frames.
        self._replication = (
            replication if replication is not None else pipeline.replication
        )
        self._follower = follower
        self._coordinator = coordinator
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def pipeline(self) -> IngestPipeline:
        return self._pipeline

    @property
    def replication(self):
        return self._replication

    @property
    def follower(self):
        # The coordinator owns (and retargets) its follower; prefer its
        # live one over whatever was passed at construction.
        if self._coordinator is not None and self._coordinator.follower is not None:
            return self._coordinator.follower
        return self._follower

    @property
    def coordinator(self):
        return self._coordinator

    @coordinator.setter
    def coordinator(self, value) -> None:
        # Settable after start(): a coordinator needs the bound port
        # (self_addr) before it can be built, which a port-0 server only
        # knows once it is listening.
        self._coordinator = value

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "StreamServer":
        """Bind and begin accepting connections; returns self."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._requested_port,
                limit=protocol.MAX_LINE_BYTES,
            )
        return self

    async def stop(self) -> None:
        """Stop accepting and close active connections (pipeline untouched).

        Open connections are closed explicitly: ``Server.close()`` only
        stops *accepting*, and on Python >= 3.12 ``wait_closed()`` waits
        for every connection handler — an idle client blocked in
        ``readline`` would hang shutdown forever otherwise.
        """
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "StreamServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(b"ERR request line too long\n")
                    break
                if not line:
                    break
                if line[:10].upper().startswith(b"REPL HELLO"):
                    # Subscription hands the whole connection over to the
                    # replication stream; when it returns, we are done.
                    await self._repl_hello(line, reader, writer)
                    break
                reply, close = await self._dispatch(line, reader)
                writer.write(reply)
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Event-loop teardown cancelled this handler mid-request; the
            # connection is going away regardless.  Swallowing (rather
            # than propagating) sidesteps asyncio.streams' noisy
            # exception() callback on cancelled connection tasks.
            pass
        finally:
            self._connections.discard(writer)
            try:
                await writer.drain()
            except (
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):  # pragma: no cover
                pass
            writer.close()

    async def _dispatch(
        self, line: bytes, reader: asyncio.StreamReader
    ) -> tuple[bytes, bool]:
        """One request in, ``(response line, close connection?)`` out.

        Most errors leave the connection open.  ``BIN`` framing errors
        close it: once the client has started shipping a binary payload
        the server cannot tell where the next command begins, so
        resynchronizing is impossible — better a clean close than
        parsing payload bytes as commands.
        """
        pipeline = self._pipeline
        try:
            text = line.decode("ascii").strip()
        except UnicodeDecodeError:
            return b"ERR request is not ASCII\n", False
        if not text:
            return b"ERR empty request\n", False
        command, *args = text.split()
        command = command.upper()
        try:
            if command == "PING":
                return b"PONG\n", False
            if command == "QUIT":
                return b"BYE\n", True
            if command == "UPDATE":
                if len(args) not in (1, 2):
                    return b"ERR usage: UPDATE <item> [weight]\n", False
                weight = float(args[1]) if len(args) == 2 else 1.0
                await pipeline.update(int(args[0]), weight)
                return b"OK\n", False
            if command == "BATCH":
                if not args:
                    return b"ERR usage: BATCH <item>:<weight> ...\n", False
                items, weights = protocol.parse_batch_args(args)
                await pipeline.submit(items, weights)
                return f"OK {len(items)}\n".encode("ascii"), False
            if command == "BIN":
                try:
                    count = int(args[0]) if len(args) == 1 else -1
                except ValueError:
                    count = -1
                if not 0 < count <= protocol.MAX_BIN_ITEMS:
                    # The payload may already be in flight and cannot be
                    # skipped safely (its length is untrusted): close.
                    return (
                        f"ERR BIN count must be in "
                        f"[1, {protocol.MAX_BIN_ITEMS}]; closing\n"
                        .encode("ascii"),
                        True,
                    )
                payload = await reader.readexactly(16 * count)
                try:
                    items, weights = protocol.decode_bin_payload(payload, count)
                    await pipeline.submit(items, weights)
                except (ReproError, ValueError, OverflowError) as exc:
                    # Payload fully consumed: the stream is still in
                    # sync, the connection can live on.
                    return f"ERR {exc}\n".encode("ascii", "replace"), False
                return f"OK {count}\n".encode("ascii"), False
            if command == "BINS":
                # BIN plus an idempotency stamp: <count> <session> <fseq>.
                try:
                    count = int(args[0]) if len(args) == 3 else -1
                except ValueError:
                    count = -1
                if not 0 < count <= protocol.MAX_BIN_ITEMS:
                    return (
                        f"ERR BINS count must be in "
                        f"[1, {protocol.MAX_BIN_ITEMS}]; closing\n"
                        .encode("ascii"),
                        True,
                    )
                session = args[1]
                if not protocol.valid_session_id(session):
                    # Stamps ride inside replication frames; an id the
                    # frame codec would reject must never reach submit.
                    return (
                        b"ERR BINS session id must match "
                        b"[A-Za-z0-9_.-]{1,64}; closing\n",
                        True,
                    )
                try:
                    frame_seq = int(args[2])
                except ValueError:
                    return (
                        b"ERR BINS frame seq must be an integer; closing\n",
                        True,
                    )
                payload = await reader.readexactly(16 * count)
                if pipeline.seen_stamp(session, frame_seq):
                    # Duplicate resend of an already-applied frame: the
                    # payload is consumed, nothing is ingested.
                    return b"OK 0\n", False
                try:
                    items, weights = protocol.decode_bin_payload(payload, count)
                    # wait_applied: the OK must mean the stamp is in the
                    # registry and the frame has been offered to
                    # replication — a client resubmitting after failover
                    # relies on the promoted follower remembering it.
                    await pipeline.submit(
                        items, weights, wait_applied=True,
                        stamp=(session, frame_seq),
                    )
                except (ReproError, ValueError, OverflowError) as exc:
                    return f"ERR {exc}\n".encode("ascii", "replace"), False
                return f"OK {count}\n".encode("ascii"), False
            if command == "EST":
                if len(args) != 1:
                    return b"ERR usage: EST <item>\n", False
                estimate = pipeline.estimate(int(args[0]))
                return f"OK {estimate:.17g}\n".encode("ascii"), False
            if command == "QEST":
                if len(args) != 1:
                    return b"ERR usage: QEST <item>\n", False
                # The staleness stamp and the estimate are read in the
                # same event-loop turn: the sequence is exactly the
                # between-batches state the answer came from.
                seq = pipeline.applied_seq
                estimate = pipeline.estimate(int(args[0]))
                return f"OK {seq} {estimate:.17g}\n".encode("ascii"), False
            if command == "QBOUNDS":
                if len(args) != 1:
                    return b"ERR usage: QBOUNDS <item>\n", False
                item = int(args[0])
                seq = pipeline.applied_seq
                return (
                    f"OK {seq} {pipeline.lower_bound(item):.17g} "
                    f"{pipeline.estimate(item):.17g} "
                    f"{pipeline.upper_bound(item):.17g}\n"
                ).encode("ascii"), False
            if command == "QHH":
                if len(args) != 1:
                    return b"ERR usage: QHH <phi>\n", False
                seq = pipeline.applied_seq
                rows = pipeline.heavy_hitters(float(args[0]))
                body = " ".join(f"{row.item}:{row.estimate:.17g}" for row in rows)
                sep = " " if body else ""
                return (
                    f"OK {seq} {len(rows)}{sep}{body}\n".encode("ascii"),
                    False,
                )
            if command == "REPL":
                return await self._dispatch_repl(args)
            if command == "BOUNDS":
                if len(args) != 1:
                    return b"ERR usage: BOUNDS <item>\n", False
                item = int(args[0])
                return (
                    f"OK {pipeline.lower_bound(item):.17g} "
                    f"{pipeline.estimate(item):.17g} "
                    f"{pipeline.upper_bound(item):.17g}\n"
                ).encode("ascii"), False
            if command == "HH":
                if len(args) != 1:
                    return b"ERR usage: HH <phi>\n", False
                rows = pipeline.heavy_hitters(float(args[0]))
                body = " ".join(f"{row.item}:{row.estimate:.17g}" for row in rows)
                sep = " " if body else ""
                return f"OK {len(rows)}{sep}{body}\n".encode("ascii"), False
            if command == "STATS":
                sketch = pipeline.sketch
                payload = {
                    "role": pipeline.role,
                    "applied_seq": pipeline.applied_seq,
                    "pending_items": pipeline.pending_items,
                    "stream_weight": sketch.stream_weight,
                    "num_active": getattr(sketch, "num_active", None),
                    "maximum_error": sketch.maximum_error,
                    **pipeline.stats.as_dict(),
                }
                return f"OK {json.dumps(payload)}\n".encode("ascii"), False
            if command == "SNAPSHOT":
                pipeline.snapshot_now()
                return f"OK {pipeline.applied_seq}\n".encode("ascii"), False
            return f"ERR unknown command {command}\n".encode("ascii"), False
        except asyncio.IncompleteReadError:
            raise ConnectionResetError("client vanished mid BIN frame")
        except (ReproError, ValueError, OverflowError) as exc:
            return f"ERR {exc}\n".encode("ascii", errors="replace"), False

    async def _dispatch_repl(self, args: list[str]) -> tuple[bytes, bool]:
        """``REPL STATUS/PROMOTE/ELECT/LEADER/PEERS`` (``REPL HELLO`` is
        handled in :meth:`_handle` — it takes the connection over)."""
        pipeline = self._pipeline
        coordinator = self._coordinator
        sub = args[0].upper() if args else ""
        if sub == "STATUS":
            payload = {
                "role": pipeline.role,
                "applied_seq": pipeline.applied_seq,
                "epoch": pipeline.epoch,
            }
            if self._replication is not None:
                payload["replication"] = self._replication.status()
            if self.follower is not None:
                payload["follower"] = self.follower.status()
            if coordinator is not None:
                payload["failover"] = coordinator.status()
            return f"OK {json.dumps(payload)}\n".encode("ascii"), False
        if sub == "PROMOTE":
            # Idempotent: promoting the current leader is a no-op that
            # reports its applied sequence — operator scripts and retried
            # requests must not fail because a prior attempt landed.
            if not pipeline.is_replica:
                return f"OK {pipeline.applied_seq}\n".encode("ascii"), False
            if coordinator is not None:
                seq = await coordinator.force_promote()
                return f"OK {seq}\n".encode("ascii"), False
            if self.follower is None:
                return b"ERR this node is not a follower\n", False
            seq = await self.follower.promote()
            return f"OK {seq}\n".encode("ascii"), False
        if sub == "ELECT":
            if coordinator is None:
                return b"ERR failover is not enabled on this node\n", False
            epoch, last_seq, candidate = protocol.parse_elect_args(args[1:])
            granted, our_epoch, leader = coordinator.handle_vote_request(
                epoch, last_seq, candidate
            )
            body = protocol.encode_vote_reply(granted, our_epoch, leader)
            return f"OK {body}\n".encode("ascii"), False
        if sub == "LEADER":
            if coordinator is None:
                return b"ERR failover is not enabled on this node\n", False
            epoch, leader_id, addr = protocol.parse_leader_args(args[1:])
            accepted, our_epoch = await coordinator.handle_leader_announcement(
                epoch, leader_id, addr
            )
            if accepted:
                return f"OK {our_epoch}\n".encode("ascii"), False
            return (
                f"ERR stale leader announcement; epoch is {our_epoch}\n"
                .encode("ascii"),
                False,
            )
        if sub == "PEERS":
            if coordinator is None:
                return b"ERR failover is not enabled on this node\n", False
            payload = coordinator.peers_payload()
            return f"OK {json.dumps(payload)}\n".encode("ascii"), False
        return (
            b"ERR usage: REPL STATUS | REPL PROMOTE | REPL PEERS | "
            b"REPL ELECT <epoch> <last_seq> <id> | "
            b"REPL LEADER <epoch> <id> <addr> | REPL HELLO <seq> [epoch]\n",
            False,
        )

    async def _repl_hello(
        self, line: bytes, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Validate a subscription and hand the connection to the
        replication stream; returning closes the connection."""
        if self._replication is None:
            writer.write(b"ERR replication is not enabled on this node\n")
            await writer.drain()
            return
        parts = line.split()
        try:
            last_seq = int(parts[2]) if len(parts) in (3, 4) else -1
            hello_epoch = int(parts[3]) if len(parts) == 4 else 0
        except ValueError:
            last_seq = hello_epoch = -1
        if last_seq < 0 or hello_epoch < 0:
            writer.write(b"ERR usage: REPL HELLO <last_applied_seq> [epoch]\n")
            await writer.drain()
            return
        writer.write(
            f"OK {self._pipeline.applied_seq} {self._pipeline.epoch}\n"
            .encode("ascii")
        )
        await writer.drain()
        await self._replication.stream(
            self._pipeline, reader, writer, last_seq, hello_epoch=hello_epoch
        )
