"""Checkpoint + write-ahead-log durability for the ingest service.

Two on-disk artifacts live in the manager's directory:

**Snapshots** (``snapshot.<seq>.rsnap``) — one self-contained checkpoint
of the served sketch, written to a temporary file and published with an
atomic ``os.replace`` so readers never observe a partial snapshot.  The
payload is the sketch's existing wire format (flat ``RFI1`` or sharded
``RFS1`` — the blob is self-describing through its magic), wrapped in a
header that additionally records the ingest sequence number and the raw
xoroshiro128++ state of every kernel PRNG.  The wire format alone
restarts PRNGs from the construction seed; the wrapper is what makes a
recovered service *bit-identical* to one that never stopped — future
sampling decisions included.

===========  =====  ====================================================
field        bytes  meaning
===========  =====  ====================================================
magic        4      ``b"RSNP"``
version      1      1
seq          8      uint64 micro-batches applied when taken
nrng         4      uint32 number of kernel PRNG states (1 per kernel)
rng states   16×n   ``(uint64 s0, uint64 s1)`` per kernel, shard order
payload len  8      uint64 length of the wrapped sketch blob
payload      ...    flat ``RFI1`` or sharded ``RFS1`` blob
crc32        4      uint32 CRC-32 of every preceding byte
===========  =====  ====================================================

**Write-ahead log** (``wal.<seq>.rwal``) — the micro-batches applied
since the snapshot whose sequence number names the file.  Each segment
starts with a 13-byte header (magic ``b"RWAL"``, version, uint64 base
sequence) followed by one record per micro-batch:

===========  =====  ====================================================
field        bytes  meaning
===========  =====  ====================================================
seq          8      uint64 sequence number of this micro-batch
count        4      uint32 number of updates in the batch
crc32        4      uint32 CRC-32 over seq, count, and both arrays
items        8×n    little-endian uint64 item identifiers
weights      8×n    little-endian float64 weights
===========  =====  ====================================================

A record is appended (and flushed) *before* the batch is applied to the
sketch, so a crash at any instant loses at most work the log can replay.
A torn tail record fails its CRC and is discarded; everything before it
replays through the same ``update_batch`` engine with the same batch
boundaries, which is exactly why recovery is bit-identical.

All decode errors raise :class:`~repro.errors.SerializationError` (a
``ValueError``): corrupt files are reported cleanly, never crashed on.
"""

from __future__ import annotations

import contextlib
import logging
import os
import re
import struct
import zlib
from typing import BinaryIO, Iterator, Optional

import numpy as np

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.serialize import sharded_from_bytes, sketch_from_bytes
from repro.errors import InvalidParameterError, SerializationError
from repro.sharded.sketch import ShardedFrequentItemsSketch

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1
WAL_MAGIC = b"RWAL"
WAL_VERSION = 1

_SNAP_HEADER = struct.Struct("<4sBQI")
_RNG_STATE = struct.Struct("<QQ")
_PAYLOAD_LEN = struct.Struct("<Q")
_CRC = struct.Struct("<I")
_WAL_HEADER = struct.Struct("<4sBQ")
_WAL_RECORD = struct.Struct("<QII")

_SNAP_NAME = re.compile(r"^snapshot\.(\d{20})\.rsnap$")
_WAL_NAME = re.compile(r"^wal\.(\d{20})\.rwal$")

logger = logging.getLogger(__name__)

#: Size of one record header: ``uint64 seq, uint32 count, uint32 crc``.
WAL_RECORD_HEADER_SIZE = _WAL_RECORD.size


def wal_record_crc(seq: int, count: int, item_bytes: bytes,
                   weight_bytes: bytes) -> int:
    """The CRC-32 a WAL record stores: both arrays, then seq and count."""
    crc = zlib.crc32(item_bytes)
    crc = zlib.crc32(weight_bytes, crc)
    return zlib.crc32(struct.pack("<QI", seq, count), crc)


def encode_wal_record(seq: int, items: np.ndarray, weights: np.ndarray) -> bytes:
    """One RWAL record — the unit both the on-disk log and the
    replication stream (:mod:`repro.service.protocol`) ship."""
    item_bytes = np.ascontiguousarray(items, dtype="<u8").tobytes()
    weight_bytes = np.ascontiguousarray(weights, dtype="<f8").tobytes()
    crc = wal_record_crc(seq, len(items), item_bytes, weight_bytes)
    return _WAL_RECORD.pack(seq, len(items), crc) + item_bytes + weight_bytes


def parse_wal_record_header(head: bytes) -> tuple[int, int, int]:
    """``(seq, count, stored_crc)`` from one record header."""
    return _WAL_RECORD.unpack(head)


def decode_wal_payload(
    seq: int, count: int, stored_crc: int, payload: bytes
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and split one record payload into (items, weights).

    Raises :class:`~repro.errors.SerializationError` on a CRC mismatch —
    callers decide whether that means a torn tail (drop silently) or a
    corrupt stream (close the connection).
    """
    if len(payload) != 16 * count:
        raise SerializationError(
            f"WAL record {seq} payload is {len(payload)} bytes, "
            f"expected {16 * count}"
        )
    if wal_record_crc(seq, count, payload[: 8 * count],
                      payload[8 * count:]) != stored_crc:
        raise SerializationError(f"WAL record {seq} failed its CRC")
    items = np.frombuffer(payload, dtype="<u8", count=count).astype(np.uint64)
    weights = np.frombuffer(
        payload, dtype="<f8", count=count, offset=8 * count
    ).astype(np.float64)
    return items, weights


def _kernels_of(sketch) -> list:
    """The kernels whose PRNG state a checkpoint must carry, in a fixed
    order (shard order for the sharded sketch)."""
    if isinstance(sketch, ShardedFrequentItemsSketch):
        return [shard.kernel for shard in sketch.shards]
    if isinstance(sketch, FrequentItemsSketch):
        return [sketch.kernel]
    # Only reachable from the encode side (decode always rebuilds one of
    # the two supported types): a caller-argument error, not corruption.
    raise InvalidParameterError(
        f"cannot snapshot a {type(sketch).__name__}; the service checkpoints "
        "FrequentItemsSketch and ShardedFrequentItemsSketch"
    )


def encode_snapshot(sketch, seq: int) -> bytes:
    """Serialize ``sketch`` plus its PRNG states into one checkpoint blob."""
    kernels = _kernels_of(sketch)
    payload = sketch.to_bytes()
    parts = [_SNAP_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, seq, len(kernels))]
    for kernel in kernels:
        s0, s1 = kernel.rng.getstate()
        parts.append(_RNG_STATE.pack(s0, s1))
    parts.append(_PAYLOAD_LEN.pack(len(payload)))
    parts.append(payload)
    body = b"".join(parts)
    return body + _CRC.pack(zlib.crc32(body))


def decode_snapshot(blob: bytes):
    """Reverse :func:`encode_snapshot`; returns ``(sketch, seq)``.

    The embedded PRNG states are restored onto the rebuilt kernels, so
    the returned sketch will make exactly the sampling decisions the
    checkpointed one would have.
    """
    if len(blob) < _SNAP_HEADER.size + _PAYLOAD_LEN.size + _CRC.size:
        raise SerializationError(
            f"snapshot blob too short for header: {len(blob)} bytes"
        )
    (stored_crc,) = _CRC.unpack_from(blob, len(blob) - _CRC.size)
    if zlib.crc32(blob[: -_CRC.size]) != stored_crc:
        raise SerializationError("snapshot CRC mismatch (torn or corrupt file)")
    magic, version, seq, nrng = _SNAP_HEADER.unpack_from(blob, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SerializationError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SerializationError(f"unsupported snapshot version {version}")
    cursor = _SNAP_HEADER.size
    if len(blob) < cursor + nrng * _RNG_STATE.size + _PAYLOAD_LEN.size + _CRC.size:
        raise SerializationError("snapshot blob truncated inside PRNG states")
    states = []
    for _ in range(nrng):
        states.append(_RNG_STATE.unpack_from(blob, cursor))
        cursor += _RNG_STATE.size
    (payload_len,) = _PAYLOAD_LEN.unpack_from(blob, cursor)
    cursor += _PAYLOAD_LEN.size
    if cursor + payload_len + _CRC.size != len(blob):
        raise SerializationError(
            f"snapshot payload length {payload_len} does not match blob size"
        )
    payload = blob[cursor : cursor + payload_len]
    if payload[:4] == b"RFS1":
        sketch = sharded_from_bytes(payload)
    else:
        sketch = sketch_from_bytes(payload)
    kernels = _kernels_of(sketch)
    if len(kernels) != nrng:
        raise SerializationError(
            f"snapshot carries {nrng} PRNG states for {len(kernels)} kernels"
        )
    for kernel, state in zip(kernels, states):
        kernel.rng.setstate(state)
    return sketch, seq


class SnapshotManager:
    """Checkpoint files + WAL segments for one ingest pipeline.

    Parameters
    ----------
    directory : str
        Where snapshots and WAL segments live.  Created if missing.  One
        manager (and one pipeline) owns a directory at a time.
    keep_snapshots : int, optional
        How many published snapshots to retain; older snapshots and the
        WAL segments no recovery from a retained snapshot could need are
        pruned after each checkpoint.
    fsync : bool, optional
        When true every WAL append is fsynced (durable against power
        loss, at a large throughput cost).  Snapshots are always synced
        before the atomic rename.  Default false: appends are flushed to
        the OS, which survives process crashes — the failure mode the
        recovery tests simulate.
    faults : DiskFaultPlane, optional
        Fault-injection hooks (:mod:`repro.service.faults`) routing
        every write/fsync/replace through an errorable layer.  ``None``
        (the default) is a zero-overhead passthrough; only the chaos
        tests arm it.
    """

    def __init__(
        self, directory: str, *, keep_snapshots: int = 2, fsync: bool = False,
        faults=None,
    ) -> None:
        if keep_snapshots < 1:
            raise InvalidParameterError(
                f"keep_snapshots must be at least 1, got {keep_snapshots}"
            )
        self._dir = os.fspath(directory)
        os.makedirs(self._dir, exist_ok=True)
        self._keep = keep_snapshots
        self._fsync = fsync
        self._faults = faults
        self._wal: Optional[BinaryIO] = None
        self._wal_base: Optional[int] = None
        self._wal_path: Optional[str] = None
        self._wal_poisoned = False

    # -- fault-plane passthroughs ----------------------------------------------

    def _write(self, fh: BinaryIO, data: bytes, path: str) -> None:
        if self._faults is not None:
            self._faults.write(fh, data, path)
        else:
            fh.write(data)

    def _sync(self, fh: BinaryIO, path: str) -> None:
        if self._faults is not None:
            self._faults.fsync(fh, path)
        else:
            os.fsync(fh.fileno())

    def _replace(self, src: str, dst: str) -> None:
        if self._faults is not None:
            self._faults.replace(src, dst)
        else:
            os.replace(src, dst)

    # -- introspection ---------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._dir

    def _listing(self, pattern: re.Pattern) -> list[tuple[int, str]]:
        found = []
        for name in os.listdir(self._dir):
            match = pattern.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self._dir, name)))
        found.sort()
        return found

    def snapshot_seqs(self) -> list[int]:
        """Sequence numbers of the published snapshots, ascending."""
        return [seq for seq, _path in self._listing(_SNAP_NAME)]

    def latest_snapshot_seq(self) -> Optional[int]:
        """The newest published snapshot's sequence number, if any."""
        seqs = self.snapshot_seqs()
        return seqs[-1] if seqs else None

    # -- checkpointing ---------------------------------------------------------

    def write_snapshot(self, sketch, seq: int) -> str:
        """Publish a checkpoint of ``sketch`` at sequence ``seq``.

        The blob is written to a temporary sibling, synced, and renamed
        into place — a crash leaves either the old snapshot set or the
        new one, never a partial file.  A *failed* write (``ENOSPC``,
        fsync error) removes the temporary and re-raises with the
        previous snapshot set fully intact.  The WAL is then rotated
        onto a fresh segment based at ``seq`` and stale files are
        pruned.  Returns the published path.
        """
        blob = encode_snapshot(sketch, seq)
        final = os.path.join(self._dir, f"snapshot.{seq:020d}.rsnap")
        tmp = final + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                self._write(fh, blob, tmp)
                fh.flush()
                self._sync(fh, tmp)
            self._replace(tmp, final)
        except OSError:
            with contextlib.suppress(OSError):
                os.remove(tmp)
            raise
        self._rotate_wal(seq)
        self._prune()
        return final

    def _rotate_wal(self, base_seq: int) -> None:
        if self._wal is not None:
            self._wal.close()
        path = os.path.join(self._dir, f"wal.{base_seq:020d}.rwal")
        # Truncate any leftover segment at this base: a same-named file can
        # only predate the snapshot just published when it carries no valid
        # records (otherwise recovery would have replayed them and the new
        # snapshot would sit at a higher sequence), and appending after a
        # torn tail would hide every later record from replay.
        self._wal = open(path, "wb")
        self._wal.write(_WAL_HEADER.pack(WAL_MAGIC, WAL_VERSION, base_seq))
        self._wal.flush()
        self._wal_base = base_seq
        self._wal_path = path
        self._wal_poisoned = False

    def _prune(self) -> None:
        snapshots = self._listing(_SNAP_NAME)
        for _seq, path in snapshots[: -self._keep]:
            os.remove(path)
        kept = [seq for seq, _path in snapshots[-self._keep :]]
        if not kept:
            return
        oldest_needed = kept[0]
        for base, path in self._listing(_WAL_NAME):
            # A segment based before the oldest retained snapshot can only
            # hold records that snapshot already covers.
            if base < oldest_needed and base != self._wal_base:
                os.remove(path)

    # -- write-ahead log -------------------------------------------------------

    def append_wal(self, seq: int, items: np.ndarray, weights: np.ndarray) -> int:
        """Append one micro-batch record; returns the bytes written.

        Must be called *before* the batch is applied to the sketch —
        that ordering is what makes every applied batch recoverable.

        A failed append (``ENOSPC``, fsync failure) may leave a torn
        record at the segment tail, which recovery discards by CRC — but
        a *later* successful append after that tail would hide itself
        and every subsequent record from replay.  So a failed append
        **poisons** the segment: the error propagates (the pipeline
        fails fast; the batch was never applied) and every further
        append raises until a checkpoint rotates onto a fresh segment.
        No record is ever torn *and* accepted.
        """
        if self._wal is None:
            raise SerializationError(
                "no WAL segment open; write_snapshot establishes one"
            )
        if self._wal_poisoned:
            raise SerializationError(
                f"WAL segment {self._wal_path!r} poisoned by an earlier "
                "failed append; a checkpoint must rotate onto a fresh segment"
            )
        record = encode_wal_record(seq, items, weights)
        try:
            self._write(self._wal, record, self._wal_path or "")
            self._wal.flush()
            if self._fsync:
                self._sync(self._wal, self._wal_path or "")
        except OSError:
            self._wal_poisoned = True
            raise
        return len(record)

    @staticmethod
    def _read_records(path: str) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield valid ``(seq, items, weights)`` records from one segment.

        Reading stops silently at the first torn or corrupt record — the
        crash-tail case the WAL design explicitly allows — but a segment
        whose *header* is unreadable raises, since that is never a torn
        tail.
        """
        with open(path, "rb") as fh:
            header = fh.read(_WAL_HEADER.size)
            if len(header) < _WAL_HEADER.size:
                raise SerializationError(f"WAL segment {path!r} has no header")
            magic, version, _base = _WAL_HEADER.unpack(header)
            if magic != WAL_MAGIC:
                raise SerializationError(f"bad WAL magic {magic!r} in {path!r}")
            if version != WAL_VERSION:
                raise SerializationError(f"unsupported WAL version {version}")
            while True:
                head = fh.read(_WAL_RECORD.size)
                if len(head) < _WAL_RECORD.size:
                    return  # clean EOF or torn record header
                seq, count, stored_crc = parse_wal_record_header(head)
                payload = fh.read(16 * count)
                if len(payload) < 16 * count:
                    return  # torn payload
                try:
                    items, weights = decode_wal_payload(
                        seq, count, stored_crc, payload
                    )
                except SerializationError:
                    return  # corrupt record: discard it and the tail
                yield seq, items, weights

    # -- recovery --------------------------------------------------------------

    def recover(self):
        """Rebuild ``(sketch, seq)`` from the newest usable checkpoint.

        Snapshots are tried newest-first; a corrupt newer snapshot is
        **quarantined** — renamed to ``<name>.corrupt`` with a logged
        warning so an operator can inspect it — before falling back to
        the previous one.  The WAL segments are then replayed
        through the same ``update_batch`` engine with the same batch
        boundaries the live pipeline used, which lands — PRNG state
        included — exactly where an uninterrupted run would be.  Returns
        ``None`` when the directory holds no snapshot at all.
        """
        snapshots = self._listing(_SNAP_NAME)
        sketch = None
        snap_seq = 0
        for seq, path in reversed(snapshots):
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                continue  # unreadable file: nothing to quarantine
            try:
                sketch, snap_seq = decode_snapshot(blob)
                break
            except SerializationError as exc:
                quarantine = path + ".corrupt"
                with contextlib.suppress(OSError):
                    os.replace(path, quarantine)
                logger.warning(
                    "quarantined corrupt snapshot %s -> %s (%s); "
                    "falling back to the previous checkpoint",
                    path, quarantine, exc,
                )
                continue
        if sketch is None:
            return None
        next_seq = snap_seq + 1
        for _base, path in self._listing(_WAL_NAME):
            for seq, items, weights in self._read_records(path):
                if seq < next_seq:
                    continue  # already covered by the snapshot
                if seq > next_seq:
                    raise SerializationError(
                        f"WAL gap: expected record {next_seq}, found {seq}"
                    )
                sketch.update_batch(items, weights)
                next_seq += 1
        return sketch, next_seq - 1

    # -- timeline reset --------------------------------------------------------

    def reset_timeline(self, sketch, seq: int) -> str:
        """Discard every on-disk artifact and re-base at ``(sketch, seq)``.

        Used when a fenced ex-leader adopts a new leader's timeline: its
        own WAL may hold a diverged suffix (records the new leader never
        shipped), and recovery replays *all* segments after the newest
        snapshot — so nothing old can be trusted.  Everything is
        removed, then a fresh snapshot of the adopted state is
        published, establishing a clean WAL segment.  Returns the new
        snapshot path.
        """
        if self._wal is not None:
            self._wal.close()
            self._wal = None
            self._wal_base = None
            self._wal_path = None
        for _seq, path in self._listing(_SNAP_NAME) + self._listing(_WAL_NAME):
            with contextlib.suppress(OSError):
                os.remove(path)
        return self.write_snapshot(sketch, seq)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the open WAL segment (no snapshot is taken)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None
            self._wal_base = None
            self._wal_path = None

    def __enter__(self) -> "SnapshotManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
