"""The asyncio ingest loop: bounded intake, micro-batching, durability.

:class:`IngestPipeline` is the always-on deployment shape of the sketch:
any number of concurrent producers push array batches through
:meth:`~IngestPipeline.submit`, a single drain task coalesces whatever
has accumulated into *micro-batches* — flushed when they reach
``max_batch_items`` or when ``flush_interval`` elapses, whichever comes
first — and applies each micro-batch through the sketch's vectorized
``update_batch`` engine.  Three properties fall out of the design:

**Backpressure.**  The intake queue is bounded by ``max_pending_items``
(counted in updates, not submissions).  ``submit`` awaits until the
backlog fits, so a burst of producers slows to the sketch's sustainable
ingest rate instead of growing memory without bound.  A submission
larger than the whole bound is admitted alone once the queue is empty.

**Consistent queries without stalling ingest.**  Each micro-batch is
applied in one synchronous call on the event loop, so every coroutine —
query handlers included — only ever observes the sketch *between*
micro-batches.  Queries are plain method calls; they never block ingest
beyond their own running time and need no locks.

**Durability.**  With a :class:`~repro.service.snapshot.SnapshotManager`
attached, every micro-batch is appended to the write-ahead log before it
is applied, and a checkpoint (sketch wire format + PRNG states) is
published every ``snapshot_every_batches`` micro-batches.  Because
recovery replays the logged batches through the same engine with the
same boundaries, a recovered pipeline is bit-identical — serialized
bytes and future sampling decisions — to one that never stopped.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import (
    InvalidParameterError,
    ReadOnlyReplicaError,
    ReplicationError,
    ServiceClosedError,
)
from repro.service.snapshot import SnapshotManager
from repro.streams.model import as_batch

#: Cap on remembered client resume sessions; oldest are evicted first.
#: Each entry is ~100 bytes, so the bound is memory safety, not policy.
MAX_RESUME_SESSIONS = 1024


@dataclass
class PipelineConfig:
    """Tuning knobs for one :class:`IngestPipeline`.

    Attributes
    ----------
    max_batch_items:
        Size trigger: a micro-batch is flushed once it holds at least
        this many updates.  Larger batches amortize the per-call engine
        cost further; the default matches the bench sweet spot.
    flush_interval:
        Time trigger, in seconds: a non-empty micro-batch is flushed at
        most this long after its first update arrived, bounding the
        staleness queries can observe under light traffic.
    max_pending_items:
        Backpressure bound on queued-but-unapplied updates; ``submit``
        awaits while the backlog would exceed it.
    snapshot_every_batches:
        With a snapshot manager attached, publish a checkpoint every
        this many applied micro-batches (the WAL covers the tail).
    """

    max_batch_items: int = 8_192
    flush_interval: float = 0.01
    max_pending_items: int = 131_072
    snapshot_every_batches: int = 64

    def __post_init__(self) -> None:
        if self.max_batch_items < 1:
            raise InvalidParameterError(
                f"max_batch_items must be positive, got {self.max_batch_items}"
            )
        if self.flush_interval <= 0:
            raise InvalidParameterError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )
        if self.max_pending_items < 1:
            raise InvalidParameterError(
                f"max_pending_items must be positive, got {self.max_pending_items}"
            )
        if self.snapshot_every_batches < 1:
            raise InvalidParameterError(
                "snapshot_every_batches must be positive, got "
                f"{self.snapshot_every_batches}"
            )


@dataclass
class ServiceStats:
    """Operational counters for one pipeline (monotonic since start)."""

    submitted_batches: int = 0
    submitted_items: int = 0
    applied_batches: int = 0
    applied_items: int = 0
    size_flushes: int = 0
    time_flushes: int = 0
    backpressure_waits: int = 0
    peak_pending_items: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    snapshots_written: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted_batches": self.submitted_batches,
            "submitted_items": self.submitted_items,
            "applied_batches": self.applied_batches,
            "applied_items": self.applied_items,
            "size_flushes": self.size_flushes,
            "time_flushes": self.time_flushes,
            "backpressure_waits": self.backpressure_waits,
            "peak_pending_items": self.peak_pending_items,
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes,
            "snapshots_written": self.snapshots_written,
        }


class IngestPipeline:
    """Concurrent producers in, micro-batched sketch updates out.

    Parameters
    ----------
    sketch:
        The summary to serve — a flat ``FrequentItemsSketch``, a
        ``ShardedFrequentItemsSketch``, or anything else exposing
        ``update_batch(items, weights)`` plus the query surface
        (``estimate`` / ``estimate_batch`` / ``heavy_hitters`` / ...).
        Snapshotting additionally requires the flat or sharded wire
        format (the time-fading sketch can ride the pipeline, but not
        checkpoint yet).
    config:
        A :class:`PipelineConfig`; defaults throughout when omitted.
    snapshots:
        An optional :class:`~repro.service.snapshot.SnapshotManager`.
        When given, :meth:`start` publishes a baseline checkpoint (so a
        WAL segment always exists) and every applied micro-batch is
        WAL-logged first.

    Examples
    --------
    >>> import asyncio
    >>> import numpy as np
    >>> from repro import FrequentItemsSketch
    >>> async def demo():
    ...     pipeline = IngestPipeline(FrequentItemsSketch(64, seed=1))
    ...     async with pipeline:
    ...         await pipeline.submit(np.array([7, 7, 8], dtype=np.uint64))
    ...         await pipeline.drain()
    ...         return pipeline.estimate(7)
    >>> asyncio.run(demo())
    2.0
    """

    def __init__(
        self,
        sketch,
        *,
        config: Optional[PipelineConfig] = None,
        snapshots: Optional[SnapshotManager] = None,
        applied_seq: int = 0,
        replication=None,
        replica: bool = False,
    ) -> None:
        self._sketch = sketch
        self._config = config if config is not None else PipelineConfig()
        self._snapshots = snapshots
        self._replication = replication
        self._replica = replica
        self._epoch = 0
        self._applied_seq = applied_seq
        #: ``{session_id: highest applied frame_seq}`` — the BINS dedup
        #: registry.  It lives on the pipeline (not the server) because
        #: replicated frames carry the stamps: a promoted follower knows
        #: every frame the old leader applied, so client resubmits after
        #: a failover stay exactly-once.
        self.resume_sessions: dict = {}
        self._last_snapshot_seq = applied_seq
        self._queue: deque = deque()
        self._pending_items = 0
        self._stats = ServiceStats()
        self._running = False
        self._stopping = False
        self._flush_asap = False
        self._fault: Optional[BaseException] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._data_event: Optional[asyncio.Event] = None
        self._space_event: Optional[asyncio.Event] = None
        self._idle_event: Optional[asyncio.Event] = None

    # -- construction helpers --------------------------------------------------

    @classmethod
    def recover(
        cls,
        snapshots: SnapshotManager,
        *,
        config: Optional[PipelineConfig] = None,
        replication=None,
        replica: bool = False,
    ) -> "IngestPipeline":
        """A pipeline resuming from ``snapshots``'s newest checkpoint.

        Raises :class:`~repro.errors.SerializationError` via the manager
        on corrupt state; raises ``ServiceClosedError`` when the
        directory has no checkpoint to resume from.
        """
        recovered = snapshots.recover()
        if recovered is None:
            raise ServiceClosedError(
                f"no snapshot to recover from in {snapshots.directory!r}"
            )
        sketch, seq = recovered
        return cls(
            sketch, config=config, snapshots=snapshots, applied_seq=seq,
            replication=replication, replica=replica,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def sketch(self):
        """The served summary (consistent between micro-batches)."""
        return self._sketch

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def stats(self) -> ServiceStats:
        return self._stats

    @property
    def applied_seq(self) -> int:
        """Sequence number of the last applied micro-batch."""
        return self._applied_seq

    @property
    def pending_items(self) -> int:
        """Updates submitted but not yet applied."""
        return self._pending_items

    @property
    def is_running(self) -> bool:
        return self._running and not self._stopping

    @property
    def is_replica(self) -> bool:
        """True while this pipeline only accepts replicated frames."""
        return self._replica

    @property
    def fault(self) -> Optional[BaseException]:
        """The error that killed the drain task, if it died (else None).

        A faulted pipeline fails every submit; health checks (the
        failover coordinator's self-fencing, tests) read this instead of
        provoking a write.
        """
        return self._fault

    @property
    def role(self) -> str:
        return "follower" if self._replica else "leader"

    @property
    def epoch(self) -> int:
        """The leadership epoch this pipeline last observed.

        Zero until a :class:`~repro.service.failover.FailoverCoordinator`
        (or an epoch-aware replication handshake) stamps it.  A leader
        publishes every frame under its epoch; a follower rejects frames
        from any lower epoch — the fence that keeps a deposed leader's
        writes out.
        """
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        if value < 0:
            raise InvalidParameterError(f"epoch must be >= 0, got {value}")
        self._epoch = value
        if self._replication is not None:
            self._replication.epoch = value

    @property
    def replication(self):
        """The attached leader-side replication manager, if any."""
        return self._replication

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "IngestPipeline":
        """Start the drain task (idempotent); returns self."""
        if self._running:
            return self
        self._data_event = asyncio.Event()
        self._space_event = asyncio.Event()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._running = True
        self._stopping = False
        if self._snapshots is not None:
            # Establish the baseline checkpoint + WAL segment.  On a fresh
            # directory this is the empty-sketch snapshot at sequence 0; on
            # recovery it compacts the replayed WAL into a new baseline.
            self._snapshots.write_snapshot(self._sketch, self._applied_seq)
            self._last_snapshot_seq = self._applied_seq
            self._stats.snapshots_written += 1
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain_loop(), name="repro-ingest-drain"
        )
        return self

    async def stop(self, *, final_snapshot: bool = True) -> None:
        """Drain queued work, optionally checkpoint, and shut down.

        With ``final_snapshot=False`` the pipeline stops exactly as a
        crash would leave it (modulo OS buffers): applied batches are in
        the WAL, no fresh checkpoint is taken — the recovery tests use
        this to simulate kill-at-arbitrary-point.  If the drain task
        died of an unexpected error, that error re-raises here (and no
        final checkpoint is taken — the sketch may hold a partially
        applied batch; the WAL is the source of truth).
        """
        if not self._running:
            if self._fault is not None:
                raise ServiceClosedError(
                    f"pipeline failed: {self._fault!r}"
                ) from self._fault
            return
        self._stopping = True
        assert self._data_event is not None
        self._data_event.set()
        try:
            if self._drain_task is not None:
                task = self._drain_task
                self._drain_task = None
                await task
        finally:
            self._running = False
            if self._snapshots is not None:
                if final_snapshot and self._fault is None:
                    self._snapshots.write_snapshot(
                        self._sketch, self._applied_seq
                    )
                    self._last_snapshot_seq = self._applied_seq
                    self._stats.snapshots_written += 1
                self._snapshots.close()

    async def __aenter__(self) -> "IngestPipeline":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- intake ----------------------------------------------------------------

    async def submit(
        self, items, weights=None, *, wait_applied: bool = False, stamp=None
    ):
        """Enqueue one batch of weighted updates.

        Validates exactly like ``update_batch`` (a rejected batch is a
        no-op), then awaits until the backlog has room — that await *is*
        the backpressure.  With ``wait_applied=True`` the call returns
        only after the micro-batch containing these updates has been
        applied (and, when durability is on, WAL-logged).  ``stamp`` is
        an optional ``(session_id, frame_seq)`` client idempotency stamp
        (the ``BINS`` path): it is recorded in :attr:`resume_sessions`
        at apply time and shipped with the replicated frame, so a
        resubmit of the same frame — to this node or to a promoted
        follower — is recognized as a duplicate.
        """
        if self._replica:
            raise ReadOnlyReplicaError(
                "this pipeline is a read replica; writes go to the leader "
                "(promote() lifts the restriction)"
            )
        if not self.is_running:
            raise ServiceClosedError("pipeline is not accepting updates")
        items, weights = as_batch(items, weights)
        n = items.shape[0]
        if n == 0:
            return
        assert self._space_event is not None and self._data_event is not None
        config = self._config
        waited = False
        while self._pending_items and (
            self._pending_items + n > config.max_pending_items
        ):
            if not self.is_running:
                raise ServiceClosedError("pipeline stopped while awaiting space")
            waited = True
            self._space_event.clear()
            await self._space_event.wait()
        if waited:
            self._stats.backpressure_waits += 1
        if not self.is_running:
            # The pipeline stopped while this producer held its place in
            # line; enqueueing now would lose the batch silently.
            raise ServiceClosedError("pipeline stopped while awaiting space")
        future: Optional[asyncio.Future] = None
        if wait_applied:
            future = asyncio.get_running_loop().create_future()
        self._queue.append((items, weights, future, stamp))
        self._pending_items += n
        if self._pending_items > self._stats.peak_pending_items:
            self._stats.peak_pending_items = self._pending_items
        self._stats.submitted_batches += 1
        self._stats.submitted_items += n
        assert self._idle_event is not None
        self._idle_event.clear()
        self._data_event.set()
        if future is not None:
            await future

    async def update(self, item: int, weight: float = 1.0) -> None:
        """Scalar convenience wrapper over :meth:`submit`."""
        await self.submit(
            np.array([item], dtype=np.uint64), np.array([weight], dtype=np.float64)
        )

    async def drain(self) -> None:
        """Await until every submitted update has been applied.

        Drain cuts the coalescing window short: a pending micro-batch is
        applied as soon as the intake queue empties instead of waiting
        out ``flush_interval``.
        """
        if self._idle_event is None:
            raise ServiceClosedError("pipeline is not started")
        if self._fault is not None:
            raise ServiceClosedError(
                f"pipeline failed: {self._fault!r}"
            ) from self._fault
        if self._idle_event.is_set():
            return
        self._flush_asap = True
        assert self._data_event is not None
        self._data_event.set()
        try:
            await self._idle_event.wait()
        finally:
            self._flush_asap = False
        if self._fault is not None:
            raise ServiceClosedError(
                f"pipeline failed: {self._fault!r}"
            ) from self._fault

    # -- the drain task --------------------------------------------------------

    async def _drain_loop(self) -> None:
        """Run the drain loop; on an unexpected error, fail fast and loud.

        A dying drain task must not wedge the pipeline: the fault flips
        the pipeline to stopped (so new submits raise), fails every
        queued and in-flight ``wait_applied`` future, and wakes all
        waiters.  The error itself re-raises so :meth:`stop` (or the
        task's own traceback, if stop is never called) surfaces it.
        """
        try:
            await self._drain_loop_inner()
        except BaseException as exc:
            self._fault = exc
            self._stopping = True
            failure = ServiceClosedError(f"pipeline failed: {exc!r}")
            while self._queue:
                items, _weights, future, _stamp = self._queue.popleft()
                self._pending_items -= items.shape[0]
                if future is not None and not future.done():
                    future.set_exception(failure)
            assert self._space_event is not None and self._idle_event is not None
            self._space_event.set()
            self._idle_event.set()
            raise

    async def _drain_loop_inner(self) -> None:
        config = self._config
        queue = self._queue
        data = self._data_event
        loop = asyncio.get_running_loop()
        assert data is not None
        while True:
            if not queue:
                if self._stopping:
                    break
                data.clear()
                if not queue:  # re-check: submit may have landed before clear
                    await data.wait()
                continue
            parts = []
            total = 0
            deadline = loop.time() + config.flush_interval
            size_flush = False
            while True:
                while queue and total < config.max_batch_items:
                    part = queue.popleft()
                    parts.append(part)
                    total += part[0].shape[0]
                if total >= config.max_batch_items:
                    size_flush = True
                    break
                if self._stopping:
                    break
                if not queue and (
                    self._flush_asap or any(part[2] is not None for part in parts)
                ):
                    # Someone is awaiting application (wait_applied futures
                    # or a drain() call): making them sit out the rest of
                    # the coalescing window would buy nothing — the queue
                    # is already empty.
                    break
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                # No await since the pop loop drained it, so the queue is
                # empty here; wait for more data or the deadline.
                data.clear()
                try:
                    await asyncio.wait_for(data.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            self._apply(parts, total, size_flush)
        # The loop only exits with the queue empty and every collected
        # part applied: submits after _stopping raise ServiceClosedError,
        # so nothing can straggle in behind the final _apply.

    def _apply(self, parts: list, total: int, size_flush: bool) -> None:
        """Apply one coalesced micro-batch synchronously (atomic on the loop)."""
        if not parts:
            return
        if len(parts) == 1:
            items, weights, _future, _stamp = parts[0]
        else:
            items = np.concatenate([part[0] for part in parts])
            weights = np.concatenate([part[1] for part in parts])
        stamps = tuple(part[3] for part in parts if part[3] is not None)
        seq = self._applied_seq + 1
        stats = self._stats
        try:
            if self._snapshots is not None:
                stats.wal_bytes += self._snapshots.append_wal(seq, items, weights)
                stats.wal_records += 1
            self._sketch.update_batch(items, weights)
        except BaseException as exc:
            # These parts are no longer in the queue, so the fault
            # handler cannot see them: settle their accounting here.
            self._pending_items -= total
            failure = ServiceClosedError(f"pipeline failed: {exc!r}")
            for part in parts:
                future = part[2]
                if future is not None and not future.done():
                    future.set_exception(failure)
            raise
        self._applied_seq = seq
        self._pending_items -= total
        stats.applied_batches += 1
        stats.applied_items += total
        for session, frame_seq in stamps:
            self.note_stamp(session, frame_seq)
        if self._replication is not None:
            # Publish the applied micro-batch with its exact boundaries:
            # followers replay the identical update_batch calls, which is
            # what makes replica state byte-identical to the leader's.
            self._replication.publish(seq, items, weights, stamps)
        if size_flush:
            stats.size_flushes += 1
        else:
            stats.time_flushes += 1
        for part in parts:
            future = part[2]
            if future is not None and not future.done():
                future.set_result(seq)
        assert self._space_event is not None and self._idle_event is not None
        self._space_event.set()
        if not self._queue:
            self._idle_event.set()
        if (
            self._snapshots is not None
            and seq - self._last_snapshot_seq >= self._config.snapshot_every_batches
        ):
            self.snapshot_now()

    # -- replication (follower side) -------------------------------------------

    def note_stamp(self, session: str, frame_seq: int) -> None:
        """Record a ``(session, frame_seq)`` idempotency stamp.

        The registry keeps the highest applied frame sequence per client
        session, bounded at :data:`MAX_RESUME_SESSIONS` entries with
        oldest-first eviction.
        """
        sessions = self.resume_sessions
        if session not in sessions and len(sessions) >= MAX_RESUME_SESSIONS:
            sessions.pop(next(iter(sessions)))
        if sessions.get(session, -1) < frame_seq:
            sessions[session] = frame_seq

    def seen_stamp(self, session: str, frame_seq: int) -> bool:
        """True when this frame (or a later one) was already applied."""
        return self.resume_sessions.get(session, -1) >= frame_seq

    def apply_replica_frame(self, seq: int, items, weights, stamps=()) -> bool:
        """Apply one replicated micro-batch with the leader's boundaries.

        The replica-side twin of :meth:`_apply`: WAL-append first, then
        one synchronous ``update_batch`` call — so a follower's snapshot
        directory recovers exactly like a leader's would.  A frame at or
        below the applied sequence is a duplicate delivery (the leader
        resent after a reconnect) and is skipped, returning ``False``; a
        frame beyond ``applied_seq + 1`` is a gap and raises
        :class:`~repro.errors.ReplicationError` — applying it would
        silently diverge from the leader.
        """
        if seq <= self._applied_seq:
            return False
        if seq != self._applied_seq + 1:
            raise ReplicationError(
                f"replication gap: expected frame {self._applied_seq + 1}, "
                f"got {seq}"
            )
        stats = self._stats
        if self._snapshots is not None:
            stats.wal_bytes += self._snapshots.append_wal(seq, items, weights)
            stats.wal_records += 1
        self._sketch.update_batch(items, weights)
        self._applied_seq = seq
        stats.applied_batches += 1
        stats.applied_items += items.shape[0]
        for session, frame_seq in stamps:
            self.note_stamp(session, frame_seq)
        if self._replication is not None:
            # Cascaded replication: a follower can feed its own followers.
            self._replication.publish(seq, items, weights, stamps)
        if (
            self._snapshots is not None
            and seq - self._last_snapshot_seq
            >= self._config.snapshot_every_batches
        ):
            self.snapshot_now()
        return True

    def install_snapshot(self, sketch, seq: int) -> None:
        """Replace the served sketch with a leader-shipped checkpoint.

        Used for follower bootstrap and seq-gap catch-up.  The installed
        state is immediately re-checkpointed locally (when durability is
        on), so the follower's own directory stays recoverable.  Refuses
        to rewind: a snapshot at or below the applied sequence would
        silently discard applied frames.
        """
        if seq < self._applied_seq:
            raise ReplicationError(
                f"refusing to install snapshot at seq {seq} below "
                f"applied seq {self._applied_seq}"
            )
        self._sketch = sketch
        self._applied_seq = seq
        if self._snapshots is not None:
            self._snapshots.write_snapshot(sketch, seq)
            self._last_snapshot_seq = seq
            self._stats.snapshots_written += 1

    def reset_to_snapshot(self, sketch, seq: int) -> None:
        """Adopt a new leader's checkpoint, rewinding if necessary.

        The fenced-rejoin twin of :meth:`install_snapshot`: a deposed
        ex-leader demoting into a newer epoch may hold a *diverged*
        suffix (frames it applied that the new leader never shipped), so
        the adopted snapshot is allowed to land below ``applied_seq``
        and the local durability timeline is wiped and re-based on it —
        old WAL segments could replay the diverged records otherwise.
        """
        self._sketch = sketch
        self._applied_seq = seq
        if self._snapshots is not None:
            self._snapshots.reset_timeline(sketch, seq)
            self._last_snapshot_seq = seq
            self._stats.snapshots_written += 1

    def promote(self) -> int:
        """Lift the read-replica restriction; returns the applied seq.

        Idempotent: promoting a pipeline that already leads is a no-op.
        The caller (normally :class:`~repro.service.replication.
        FollowerService`) is responsible for having stopped the
        replication stream first — a promoted pipeline accepting both
        client writes and leader frames would fork.
        """
        self._replica = False
        return self._applied_seq

    def demote(self) -> int:
        """Flip this pipeline back to read-replica mode; returns the seq.

        The fencing half of a leadership change: a deposed leader must
        stop accepting writes *before* it adopts the new leader's
        timeline, or a late client write would fork it again.  Queued
        (not yet applied) submissions still drain — they were accepted
        while this node led and are about to be discarded anyway when
        the new timeline is adopted.  Idempotent on a follower.
        """
        self._replica = True
        return self._applied_seq

    # -- durability ------------------------------------------------------------

    def snapshot_now(self) -> Optional[str]:
        """Publish a checkpoint at the current applied sequence.

        Safe to call from any coroutine: applies are synchronous on the
        event loop, so the sketch is always between micro-batches here.
        Returns the published path, or ``None`` without a manager.
        """
        if self._snapshots is None:
            return None
        path = self._snapshots.write_snapshot(self._sketch, self._applied_seq)
        self._last_snapshot_seq = self._applied_seq
        self._stats.snapshots_written += 1
        return path

    # -- queries (consistent between micro-batches) ----------------------------

    def estimate(self, item: int) -> float:
        return self._sketch.estimate(item)

    def estimate_batch(self, items) -> np.ndarray:
        return self._sketch.estimate_batch(items)

    def lower_bound(self, item: int) -> float:
        return self._sketch.lower_bound(item)

    def upper_bound(self, item: int) -> float:
        return self._sketch.upper_bound(item)

    def heavy_hitters(self, phi: float, *args, **kwargs):
        return self._sketch.heavy_hitters(phi, *args, **kwargs)

    def frequent_items(self, *args, **kwargs):
        return self._sketch.frequent_items(*args, **kwargs)

    def to_rows(self):
        return self._sketch.to_rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestPipeline(seq={self._applied_seq}, "
            f"pending={self._pending_items}, running={self.is_running}, "
            f"sketch={self._sketch!r})"
        )
