"""Zero-copy ingest frames between the acceptor and worker processes.

The cluster's hot path moves ``(items, weights)`` array batches from the
asyncio acceptor into worker processes.  Pickling arrays over a pipe
costs a serialize + copy + deserialize per frame; the
:class:`SharedFrameRing` replaces that with a single-producer /
single-consumer ring of fixed slots in one
``multiprocessing.shared_memory`` segment.  The acceptor copies the
incoming payload **once** into the slot's numpy views; the worker wraps
the same bytes in numpy views and feeds them *directly* to
``update_batch`` — zero copies on the consumer side, no pickling
anywhere.

Slot protocol (seqlock-style): every frame gets a monotonically
increasing sequence number; slot ``(seq - 1) % slots`` may be written
only when ``seq - consumed <= slots`` (the previous occupant has been
applied), the payload is written first and the slot header's
``frame_seq`` word is published **last**, and the consumer treats a slot
as ready only when ``frame_seq`` equals exactly the next sequence it
expects.  The consumer advances the ring-header ``consumed`` word only
after the frame has been fully applied (WAL-logged and ingested), so the
consumed watermark doubles as the cluster's applied-frame watermark —
the acceptor reads it straight out of shared memory and never needs an
acknowledgement message.  Both watermark words are 8-byte-aligned single
stores, and each word has exactly one writing process.

The byte layout (magic ``RSHM``) is documented field by field in
``docs/serialization.md`` and pinned by an offset-validation test.  When
``multiprocessing.shared_memory`` is unavailable (or the pool is built
with ``frame_transport="pipe"``), the cluster degrades to shipping the
same frames as pickled arrays over the worker's control pipe — slower,
bit-identical in result.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ClusterError, InvalidParameterError

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - minimal build without _posixshmem
    _shm = None  # type: ignore[assignment]

RING_MAGIC = b"RSHM"
RING_VERSION = 1

#: Ring header: magic(4) version(4) slots(4) slot_capacity(4)
#: produced(8) consumed(8), padded to one cache line.
RING_HEADER_SIZE = 64
#: Slot header: frame_seq(8) tenant_id(4) count(4), padded likewise.
SLOT_HEADER_SIZE = 64


def shared_memory_available() -> bool:
    """True when the zero-copy transport can be used on this platform."""
    return _shm is not None


def ring_segment_size(slots: int, slot_capacity: int) -> int:
    """Total bytes of a ring segment with the given geometry."""
    return RING_HEADER_SIZE + slots * (
        SLOT_HEADER_SIZE + 16 * slot_capacity
    )


class SharedFrameRing:
    """One acceptor-to-worker frame ring in a shared-memory segment.

    Exactly one process may produce (:meth:`write`) and exactly one may
    consume (:meth:`peek` / :meth:`commit`); the pool enforces this by
    construction — the acceptor produces, the owning worker consumes.
    """

    def __init__(
        self, segment, slots: int, slot_capacity: int, *, owner: bool
    ) -> None:
        self._segment = segment
        self._slots = slots
        self._capacity = slot_capacity
        self._owner = owner
        buf = segment.buf
        self._magic = np.frombuffer(buf, dtype=np.uint8, count=4, offset=0)
        self._geometry = np.frombuffer(buf, dtype="<u4", count=3, offset=4)
        self._produced = np.frombuffer(buf, dtype="<u8", count=1, offset=16)
        self._consumed = np.frombuffer(buf, dtype="<u8", count=1, offset=24)
        self._slot_seq = []
        self._slot_meta = []
        self._slot_items = []
        self._slot_weights = []
        slot_bytes = SLOT_HEADER_SIZE + 16 * slot_capacity
        for index in range(slots):
            base = RING_HEADER_SIZE + index * slot_bytes
            self._slot_seq.append(
                np.frombuffer(buf, dtype="<u8", count=1, offset=base)
            )
            self._slot_meta.append(
                np.frombuffer(buf, dtype="<u4", count=2, offset=base + 8)
            )
            self._slot_items.append(
                np.frombuffer(
                    buf, dtype="<u8", count=slot_capacity,
                    offset=base + SLOT_HEADER_SIZE,
                )
            )
            self._slot_weights.append(
                np.frombuffer(
                    buf, dtype="<f8", count=slot_capacity,
                    offset=base + SLOT_HEADER_SIZE + 8 * slot_capacity,
                )
            )

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, slots: int, slot_capacity: int) -> "SharedFrameRing":
        """Allocate a fresh segment (acceptor side; owns the unlink)."""
        if _shm is None:  # pragma: no cover - platform without shm
            raise ClusterError("shared memory is unavailable on this platform")
        if slots < 1 or slot_capacity < 1:
            raise InvalidParameterError(
                f"ring geometry must be positive, got slots={slots}, "
                f"slot_capacity={slot_capacity}"
            )
        segment = _shm.SharedMemory(
            create=True, size=ring_segment_size(slots, slot_capacity)
        )
        segment.buf[: RING_HEADER_SIZE] = bytes(RING_HEADER_SIZE)
        ring = cls(segment, slots, slot_capacity, owner=True)
        ring._magic[:] = np.frombuffer(RING_MAGIC, dtype=np.uint8)
        ring._geometry[:] = (RING_VERSION, slots, slot_capacity)
        return ring

    @classmethod
    def attach(cls, name: str) -> "SharedFrameRing":
        """Map an existing segment by name (worker side).

        The worker is *not* the owner, but ``SharedMemory(name=...)``
        registers the segment with the resource tracker anyway (fixed
        only in 3.13's ``track=False``), which would unlink it out from
        under the acceptor at worker exit.  Suppressing the registration
        during the attach keeps exactly one tracker entry: the owner's.
        """
        if _shm is None:  # pragma: no cover - platform without shm
            raise ClusterError("shared memory is unavailable on this platform")
        try:
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _skip_shm(rt_name, rtype):  # pragma: no cover - trivial
                if rtype != "shared_memory":
                    original_register(rt_name, rtype)

            resource_tracker.register = _skip_shm
        except Exception:  # pragma: no cover - tracker internals moved
            resource_tracker = None  # type: ignore[assignment]
            original_register = None
        try:
            segment = _shm.SharedMemory(name=name)
        finally:
            if original_register is not None:
                resource_tracker.register = original_register
        header = bytes(segment.buf[:16])
        if header[:4] != RING_MAGIC:
            segment.close()
            raise ClusterError(f"segment {name!r} is not a frame ring")
        version, slots, capacity = np.frombuffer(
            header, dtype="<u4", count=3, offset=4
        )
        if int(version) != RING_VERSION:
            segment.close()
            raise ClusterError(f"unsupported frame ring version {version}")
        return cls(segment, int(slots), int(capacity), owner=False)

    # -- introspection ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def slot_capacity(self) -> int:
        return self._capacity

    def produced_seq(self) -> int:
        """Sequence of the newest published frame (producer watermark)."""
        return int(self._produced[0])

    def consumed_seq(self) -> int:
        """Sequence of the newest fully *applied* frame.

        Because the consumer commits only after the frame has been
        WAL-logged and ingested, this is the cluster's applied-frame
        watermark, readable by the acceptor without any message.
        """
        return int(self._consumed[0])

    # -- producer --------------------------------------------------------------

    def has_space(self) -> bool:
        """True when the next frame's slot has been released."""
        return (
            self.produced_seq() - self.consumed_seq() < self._slots
        )

    def write(self, tenant_id: int, items, weights) -> int:
        """Publish one frame; returns its sequence number.

        The caller must have confirmed :meth:`has_space` (the pool
        awaits it — that wait *is* the cross-process backpressure) and
        ``len(items) <= slot_capacity``.  Payload first, header last.
        """
        n = len(items)
        if n > self._capacity:
            raise InvalidParameterError(
                f"frame of {n} updates exceeds the slot capacity "
                f"{self._capacity}; chunk before writing"
            )
        seq = self.produced_seq() + 1
        index = (seq - 1) % self._slots
        self._slot_items[index][:n] = items
        self._slot_weights[index][:n] = weights
        self._slot_meta[index][:] = (tenant_id, n)
        self._slot_seq[index][0] = seq  # publish
        self._produced[0] = seq
        return seq

    # -- consumer --------------------------------------------------------------

    def peek(self) -> Optional[tuple[int, int, np.ndarray, np.ndarray]]:
        """The next unconsumed frame as zero-copy views, or ``None``.

        Returns ``(seq, tenant_id, items_view, weights_view)``; the
        views alias the slot until :meth:`commit` releases it, so the
        consumer must apply (or copy) before committing.
        """
        seq = self.consumed_seq() + 1
        index = (seq - 1) % self._slots
        if int(self._slot_seq[index][0]) != seq:
            return None
        tenant_id, count = (int(x) for x in self._slot_meta[index])
        return (
            seq,
            tenant_id,
            self._slot_items[index][:count],
            self._slot_weights[index][:count],
        )

    def commit(self, seq: int) -> None:
        """Mark ``seq`` applied, releasing its slot for reuse."""
        if seq != self.consumed_seq() + 1:
            raise ClusterError(
                f"frame commit out of order: expected "
                f"{self.consumed_seq() + 1}, got {seq}"
            )
        self._consumed[0] = seq

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drop the numpy views and unmap (unlink too, when owner).

        Views must be released before the buffer can be unmapped; the
        caller is responsible for no longer holding frame views (the
        worker stops its pipelines — which drop queued views — first).
        """
        self._magic = self._geometry = None  # type: ignore[assignment]
        self._produced = self._consumed = None  # type: ignore[assignment]
        self._slot_seq = self._slot_meta = []  # type: ignore[assignment]
        self._slot_items = self._slot_weights = []  # type: ignore[assignment]
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - stray view still alive
            import gc

            gc.collect()
            try:
                self._segment.close()
            except BufferError:
                return  # leak the mapping rather than crash shutdown
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
