"""The shared ingest kernel behind every counter-based sketch variant.

The paper's contribution (Algorithm 4 + Section 2.3) is really a
*kernel*: a bounded counter table, a sampled-quantile decrement policy,
and offset / stream-weight accounting.  :class:`SketchKernel` packages
exactly that state and its two ingestion paths — the scalar
:meth:`~SketchKernel.ingest` loop and the segmented, vectorized
:meth:`~SketchKernel.ingest_batch` — so that the flat
:class:`~repro.core.frequent_items.FrequentItemsSketch`, the sharded
sketch, and the extensions (windowed, sampled, decayed) all compose the
same engine instead of re-implementing pieces of it.

Both paths are *bit-identical* to each other (for integer-representable
weights) and to the pre-extraction ``FrequentItemsSketch`` internals:
same counters, same offset, same PRNG draw sequence, same serialized
bytes.  Queries over a kernel live in
:class:`repro.engine.query.QueryEngine`.

>>> kernel = SketchKernel(64, seed=1)
>>> kernel.update(7, 100.0)
>>> kernel.update(7, 25.0)
>>> kernel.store.get(7), kernel.stream_weight
(125.0, 125.0)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policies import DecrementPolicy, SampleQuantilePolicy
from repro.engine.grouping import BatchGrouper
from repro.errors import (
    IncompatibleSketchError,
    InvalidParameterError,
    InvalidUpdateError,
)
from repro.metrics.instrumentation import OpStats
from repro.native import seed_mix, table_kernels
from repro.prng import Xoroshiro128PlusPlus
from repro.table import GROWTH_MODES, make_store
from repro.table.base import CounterStore
from repro.table.columnar import ColumnarCounterStore
from repro.table.dictstore import DictCounterStore
from repro.types import ItemId

#: XOR mask applied to the construction seed before seeding the counter
#: sampling PRNG (kept identical to the pre-engine FrequentItemsSketch so
#: serialized state and draw sequences are unchanged).
RNG_SEED_MASK = 0x5EED_0F_5EED


class SketchKernel:
    """Counter table + decrement policy + offset accounting, batched and scalar.

    Parameters
    ----------
    max_counters:
        The paper's ``k`` — number of counters maintained.  Must be >= 2.
    policy:
        The ``DecrementCounters()`` strategy (the paper's SMED
        configuration when omitted).
    backend:
        Counter-store backend name (see :func:`repro.table.make_store`).
    seed:
        Controls counter sampling, quickselect pivots, merge iteration
        order, and the table hash — two kernels built with the same seed
        and inputs are identical.
    growth:
        ``"fixed"`` (default) allocates the full counter table up front;
        ``"adaptive"`` starts it small and doubles up to ``k`` on
        overflow, the paper's doubling hash map.  Decrement passes begin
        only once the table holds ``k`` counters, in either mode — so an
        adaptive kernel answers queries bit-identically to a fixed one.
    """

    __slots__ = (
        "k",
        "policy",
        "backend",
        "seed",
        "growth",
        "store",
        "rng",
        "offset",
        "stream_weight",
        "stats",
        "_grouper",
        "_val_arena",
        "_tracked_arena",
        "_first_arena",
    )

    def __init__(
        self,
        max_counters: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "probing",
        seed: int = 0,
        growth: str = "fixed",
    ) -> None:
        if max_counters < 2:
            raise InvalidParameterError(
                f"max_counters must be at least 2, got {max_counters}"
            )
        if growth not in GROWTH_MODES:
            raise InvalidParameterError(
                f"growth must be one of {GROWTH_MODES}, got {growth!r}"
            )
        self.k = max_counters
        self.policy: DecrementPolicy = (
            policy if policy is not None else SampleQuantilePolicy()
        )
        self.backend = backend
        self.seed = seed
        self.growth = growth
        self.store: CounterStore = make_store(
            backend, max_counters, seed=seed, growth=growth
        )
        self.rng = Xoroshiro128PlusPlus(seed ^ RNG_SEED_MASK)
        self.offset = 0.0
        self.stream_weight = 0.0
        self.stats = OpStats()
        # Batched-ingest scratch, created lazily on the first batch: the
        # grouper owns the hash-grouping table, the arenas back the
        # per-group masks/values so no window reallocates them.
        self._grouper: Optional[BatchGrouper] = None
        self._val_arena: Optional[np.ndarray] = None
        self._tracked_arena: Optional[np.ndarray] = None
        self._first_arena: Optional[np.ndarray] = None

    # -- reconstruction -------------------------------------------------------

    @classmethod
    def restore(
        cls,
        max_counters: int,
        policy: Optional[DecrementPolicy],
        backend: str,
        seed: int,
        items: np.ndarray,
        counts: np.ndarray,
        offset: float,
        stream_weight: float,
        rng_state: Optional[tuple[int, int]] = None,
        stats: Optional[OpStats] = None,
        growth: str = "fixed",
    ) -> "SketchKernel":
        """Rebuild a kernel from saved state (the one shared restore path).

        ``copy()`` and ``from_bytes()`` both funnel through here:
        counters are bulk-inserted in the order given (which fixes the
        layout of order-sensitive stores exactly as a scalar insert
        sequence would), the accounting scalars are restored verbatim,
        and the PRNG either resumes from ``rng_state`` (copy) or
        restarts from the construction seed (deserialization).
        """
        kernel = cls(
            max_counters, policy=policy, backend=backend, seed=seed, growth=growth
        )
        if len(items):
            kernel.store.insert_many(
                np.ascontiguousarray(items, dtype=np.uint64),
                np.ascontiguousarray(counts, dtype=np.float64),
            )
        kernel.offset = offset
        kernel.stream_weight = stream_weight
        if rng_state is not None:
            kernel.rng.setstate(rng_state)
        if stats is not None:
            kernel.stats = OpStats(**stats.as_dict())
        return kernel

    def copy(self) -> "SketchKernel":
        """An independent deep copy (same configuration and contents)."""
        items, counts = self.store.as_arrays()
        return SketchKernel.restore(
            self.k,
            self.policy,
            self.backend,
            self.seed,
            items,
            counts,
            self.offset,
            self.stream_weight,
            rng_state=self.rng.getstate(),
            stats=self.stats,
            growth=self.growth,
        )

    # -- scalar ingestion -----------------------------------------------------

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Validate and process one weighted stream update."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self.stream_weight += weight
        self.ingest(item, weight)

    def ingest(self, item: ItemId, weight: float) -> None:
        """Counter logic shared by :meth:`update` and :meth:`absorb`.

        Does *not* touch :attr:`stream_weight` — merging must account for
        the other summary's true stream weight, not its counter sum.
        """
        stats = self.stats
        stats.updates += 1
        store = self.store
        if store.add_to(item, weight):
            stats.hits += 1
            return
        if len(store) < self.k:
            store.insert(item, weight)
            stats.inserts += 1
            return
        # Table full: DecrementCounters() (Algorithm 4, lines 15-21).
        c_star = self.policy.decrement_value(store, self.rng)
        scanned = len(store)
        freed = store.decrement_and_purge(c_star)
        self.offset += c_star
        stats.decrements += 1
        stats.counters_scanned += scanned
        stats.counters_freed += freed
        if weight > c_star:
            store.insert(item, weight - c_star)
            stats.inserts += 1

    # -- batched ingestion ----------------------------------------------------

    def update_batch_validated(self, items: np.ndarray, weights: np.ndarray) -> None:
        """Batched ingest minus input coercion.

        ``items``/``weights`` must already be the ``(uint64, float64)``
        pair :func:`repro.streams.model.as_batch` produces.  The sharded
        ingestion path validates a batch once and feeds each shard its
        slice through this entry point, skipping per-shard re-validation.
        """
        n = items.shape[0]
        if n == 0:
            return
        # Stream-weight exactness contract: for integer-valued weights
        # (every workload in the paper — unit weights, packet counts,
        # packet bits) this one bulk sum is exact in any order, so the
        # batched and scalar stream weights are bit-identical.  For
        # fractional weights NumPy's pairwise summation bounds the
        # rounding drift by O(eps * log n) relative — far tighter than a
        # naive left-to-right loop — but bit-identity with the scalar
        # ``+=`` sequence is explicitly NOT promised; a regression test
        # pins the drift bound so it cannot silently widen.
        self.stream_weight += float(weights.sum())
        # Ingest in bounded windows: the segment scan inside
        # ingest_batch walks the remaining window once per decrement
        # pass, so capping the window at O(k) keeps the worst case
        # (min-like policies that free one counter per pass) at the
        # scalar loop's O(n*k) instead of O(n^2).  ingest_batch is
        # per-update-equivalent, so windowing cannot change the result.
        window = max(4096, 8 * self.k)
        if n <= window:
            self.ingest_batch(items, weights)
        else:
            for start in range(0, n, window):
                stop = start + window
                self.ingest_batch(items[start:stop], weights[start:stop])

    def _ensure_arenas(
        self, num_groups: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The kernel-owned per-group scratch arrays (reused, grown
        geometrically, never shrunk): ``(val, tracked, first_scratch)``."""
        val = self._val_arena
        tracked = self._tracked_arena
        first = self._first_arena
        if val is None or tracked is None or first is None or len(val) < num_groups:
            size = max(4096, 1 << (num_groups - 1).bit_length())
            val = self._val_arena = np.empty(size, dtype=np.float64)
            tracked = self._tracked_arena = np.empty(size, dtype=bool)
            first = self._first_arena = np.empty(size, dtype=np.int64)
        return val, tracked, first

    def ingest_batch(self, items: np.ndarray, weights: np.ndarray) -> None:
        """Grouped counter logic, equivalent to :meth:`ingest` per element.

        The batch is processed as a run of *segments* separated by
        decrement passes.  Within a segment no counter is freed, so
        updates commute into per-key groups: tracked keys take one bulk
        add, new keys one bulk insert (in first-occurrence order, which
        pins down iteration order on order-sensitive layouts).  The
        segment boundary is placed exactly where the scalar loop would
        overflow the table — the first update whose key is untracked
        once the table is full — and the decrement there replays the
        scalar code path verbatim, PRNG draws included.

        Grouping is hash-based (:class:`~repro.engine.grouping.
        BatchGrouper`): no ``np.unique`` sort, and the grouping table and
        per-group masks live in kernel-owned arenas reused across
        windows, so the steady-state loop allocates almost nothing.
        """
        store = self.store
        stats = self.stats
        k = self.k
        n = len(items)
        if n == 0:
            return
        if type(store) is DictCounterStore:
            # CPython's dict probe is already a compiled hash lookup, so
            # the grouped orchestration below only adds overhead on this
            # backend; inline the scalar loop over raw dict ops instead.
            self._ingest_batch_dict_fast(items, weights)
            return
        native = self._native_ingest_spec()
        if native is not None:
            self._ingest_batch_native(items, weights, *native)
            return
        grouper = self._grouper
        if grouper is None:
            grouper = self._grouper = BatchGrouper()
        uniq, inverse, num_groups = grouper.group(items)
        if not len(store) and num_groups <= k:
            # Bulk load: every distinct key fits an empty table, so no
            # decrement pass can trigger (weights are positive) and the
            # whole batch collapses to one grouped insert.  This is the
            # hot path for deserialization, merge into a fresh sketch,
            # and the first batch on each shard of a sharded ingest.
            # ``uniq`` is already in first-occurrence order — exactly the
            # scalar insert sequence for order-sensitive layouts (the
            # sorted columnar layout is order-independent anyway).
            sums = np.bincount(inverse, weights=weights, minlength=num_groups)
            store.insert_many(uniq, sums)
            stats.updates += n
            stats.inserts += num_groups
            stats.hits += n - num_groups
            return
        # Per-group live value, mirrored locally so purge survival can be
        # decided with array ops instead of store lookups.  NaN-free:
        # untracked groups carry 0.0 and a False `tracked` flag.
        val_arena, tracked_arena, first_arena = self._ensure_arenas(num_groups)
        tracked = tracked_arena[:num_groups]
        val = val_arena[:num_groups]
        first_scratch = first_arena[:num_groups]
        if len(store):
            initial = store.get_many(uniq)
            np.isnan(initial, out=tracked)
            np.logical_not(tracked, out=tracked)
            val[:] = 0.0
            np.copyto(val, initial, where=tracked)
        else:
            # Bulk-load-adjacent (empty table, more groups than k): no
            # key can be tracked yet — skip the get_many NaN round-trip.
            tracked[:] = False
            val[:] = 0.0
        p = 0
        while p < n:
            room = k - len(store)
            sub = inverse[p:]
            untracked_at = np.flatnonzero(~tracked[sub])
            if untracked_at.size:
                # First occurrence (within the suffix) of each distinct
                # untracked group: reversed fancy assignment makes the
                # earliest position win, with no sort.
                groups_at = sub[untracked_at]
                first_scratch[:] = -1
                first_scratch[groups_at[::-1]] = untracked_at[::-1]
                candidates = first_scratch[first_scratch >= 0]
            else:
                candidates = untracked_at
            if candidates.size <= room:
                seg_len = n - p
                trigger = -1
                new_positions = np.sort(candidates)
            else:
                # The (room+1)-th distinct new key overflows the table:
                # that update runs the decrement, exactly as in scalar.
                bound = np.partition(candidates, room)[: room + 1]
                bound.sort()
                new_positions = bound[:room]
                seg_len = int(bound[room])
                trigger = p + seg_len
            if seg_len:
                seg_weights = np.bincount(
                    sub[:seg_len], weights=weights[p : p + seg_len],
                    minlength=num_groups,
                )
                # Positive weights make "summed to > 0" and "present in
                # the segment" the same predicate.
                add_groups = np.flatnonzero((seg_weights > 0.0) & tracked)
                if add_groups.size:
                    store.add_many(uniq[add_groups], seg_weights[add_groups])
                    val[add_groups] += seg_weights[add_groups]
                new_groups = sub[new_positions]
                if new_groups.size:
                    store.insert_many(uniq[new_groups], seg_weights[new_groups])
                    tracked[new_groups] = True
                    val[new_groups] = seg_weights[new_groups]
                stats.updates += seg_len
                stats.inserts += int(new_groups.size)
                stats.hits += seg_len - int(new_groups.size)
            if trigger < 0:
                break
            # Table full: DecrementCounters(), scalar code path verbatim.
            trigger_weight = float(weights[trigger])
            trigger_group = int(inverse[trigger])
            c_star = self.policy.decrement_value(store, self.rng)
            scanned = len(store)
            freed = store.decrement_and_purge(c_star)
            self.offset += c_star
            stats.updates += 1
            stats.decrements += 1
            stats.counters_scanned += scanned
            stats.counters_freed += freed
            np.subtract(val, c_star, out=val, where=tracked)
            tracked &= val > 0.0
            if trigger_weight > c_star:
                store.insert(int(uniq[trigger_group]), trigger_weight - c_star)
                stats.inserts += 1
                tracked[trigger_group] = True
                val[trigger_group] = trigger_weight - c_star
            p = trigger + 1

    # -- native (compiled) ingestion ------------------------------------------

    def _native_ingest_spec(self) -> Optional[tuple]:
        """``(kernels, robinhood)`` when the whole ingest loop can run in C.

        Requires the stock sampled-quantile policy with the ``"auto"``
        selector (the compiled decrement replicates exactly that order
        statistic and its PRNG draw sequence) on a native-servable,
        fully-grown probing table.
        """
        policy = self.policy
        if type(policy) is not SampleQuantilePolicy or policy.selector != "auto":
            return None
        return table_kernels(self.store)

    def _ingest_batch_native(
        self, items: np.ndarray, weights: np.ndarray, kernels, robinhood: int
    ) -> None:
        """Run the scalar :meth:`ingest` loop over the batch in C.

        ``ingest_batch`` is defined to be per-update-equivalent to the
        scalar loop, so the compiled loop — a literal port of
        :meth:`ingest`, PRNG steps included — is bit-identical to both
        Python paths.  Only ``probe_count`` follows the scalar (not the
        segmented) accounting, matching what a scalar replay would
        charge.
        """
        items = np.require(items, dtype=np.uint64, requirements=("C", "A"))
        weights = np.require(weights, dtype=np.float64, requirements=("C", "A"))
        store = self.store
        policy = self.policy
        s0, s1 = self.rng.getstate()
        (
            size,
            s0,
            s1,
            offset,
            probes,
            hits,
            inserts,
            decrements,
            scanned,
            freed,
        ) = kernels.ingest_batch(
            items,
            weights,
            store._keys,
            store._values,
            store._states,
            store._size,
            self.k,
            seed_mix(store._seed),
            robinhood,
            s0,
            s1,
            self.offset,
            policy.quantile,
            policy.sample_size,
        )
        store._size = size
        store.probe_count += probes
        self.rng.setstate((s0, s1))
        self.offset = offset
        stats = self.stats
        stats.updates += len(items)
        stats.hits += hits
        stats.inserts += inserts
        stats.decrements += decrements
        stats.counters_scanned += scanned
        stats.counters_freed += freed

    # -- dict-backend fast path ------------------------------------------------

    def _ingest_batch_dict_fast(self, items: np.ndarray, weights: np.ndarray) -> None:
        """Inlined scalar ingest loop over raw dict operations.

        Identical in every observable to calling :meth:`ingest` per
        element — same dict insertion order (hence iteration order and
        serialized bytes), same PRNG draws, and ``value - c*`` is
        bit-equal to the scalar path's ``value + (-c*)`` — while skipping
        the per-update method dispatch and the grouped path's per-window
        array work, neither of which helps a backend whose point lookups
        are already C-coded.
        """
        store = self.store
        counts = store._counts  # type: ignore[attr-defined]
        k = self.k
        stats = self.stats
        policy = self.policy
        rng = self.rng
        hits = 0
        inserts = 0
        for item, weight in zip(items.tolist(), weights.tolist()):
            current = counts.get(item)
            if current is not None:
                counts[item] = current + weight
                hits += 1
                continue
            if len(counts) < k:
                counts[item] = weight
                inserts += 1
                continue
            c_star = policy.decrement_value(store, rng)
            stats.decrements += 1
            stats.counters_scanned += len(counts)
            survivors = {
                key: value - c_star
                for key, value in counts.items()
                if value > c_star
            }
            stats.counters_freed += len(counts) - len(survivors)
            counts = store._counts = survivors  # type: ignore[attr-defined]
            self.offset += c_star
            if weight > c_star:
                counts[item] = weight - c_star
                inserts += 1
        stats.updates += len(items)
        stats.hits += hits
        stats.inserts += inserts

    # -- merging --------------------------------------------------------------

    def absorb(self, other: "SketchKernel") -> "SketchKernel":
        """Algorithm 5: replay ``other``'s counters into this kernel.

        The other summary's counters are fed through the update path in
        *random order* — the Section 3.2 note: iterating a hash table
        front-to-back into another table (possibly sharing the hash
        function) would overpopulate the front of this kernel's table.
        Offsets add (each summary's accumulated error carries over) and
        stream weights add.  ``other`` is not modified.
        """
        if other is self:
            raise IncompatibleSketchError("cannot merge a sketch into itself")
        entries = list(other.store.items())
        if len(entries) > 1:
            # Deterministic random order, seeded from this kernel's PRNG
            # (numpy's permutation is C-coded; a pure-Python shuffle would
            # dominate the merge cost at large k).
            order = np.random.Generator(
                np.random.PCG64(self.rng.next_u64())
            ).permutation(len(entries))
            entries = [entries[index] for index in order]
        if isinstance(self.store, DictCounterStore):
            self._merge_entries_dict_fast(entries)
        elif entries and (
            isinstance(self.store, ColumnarCounterStore)
            or self._native_ingest_spec() is not None
        ):
            # The batch ingest is defined to equal the per-entry loop;
            # on the columnar store it replaces per-entry O(k) insert
            # shifts with bulk sorted merges, and on native-servable
            # probing tables the whole replay runs in C.
            self.ingest_batch(
                np.array([item for item, _count in entries], dtype=np.uint64),
                np.array([count for _item, count in entries], dtype=np.float64),
            )
        else:
            for item, count in entries:
                self.ingest(item, count)
        self.offset += other.offset
        self.stream_weight += other.stream_weight
        return self

    def _merge_entries_dict_fast(self, entries: list[tuple[ItemId, float]]) -> None:
        """Inlined Algorithm 5 ingest loop for the dict backend.

        Semantically identical to calling :meth:`ingest` per entry (the
        tests assert so); inlining removes the per-counter Python call
        frames that would otherwise dominate merge cost at large k.
        """
        store = self.store
        counts = store._counts  # type: ignore[attr-defined]
        k = self.k
        stats = self.stats
        hits = 0
        inserts = 0
        for item, count in entries:
            current = counts.get(item)
            if current is not None:
                counts[item] = current + count
                hits += 1
                continue
            if len(counts) < k:
                counts[item] = count
                inserts += 1
                continue
            c_star = self.policy.decrement_value(store, self.rng)
            stats.decrements += 1
            stats.counters_scanned += len(counts)
            survivors = {
                key: value - c_star
                for key, value in counts.items()
                if value > c_star
            }
            stats.counters_freed += len(counts) - len(survivors)
            counts = store._counts = survivors  # type: ignore[attr-defined]
            self.offset += c_star
            if count > c_star:
                counts[item] = count - c_star
                inserts += 1
        stats.updates += len(entries)
        stats.hits += hits
        stats.inserts += inserts

    # -- rescaling (time-fading consumers) ------------------------------------

    def rescale(self, factor: float) -> None:
        """Multiply every counter and both accounting scalars by ``factor``.

        The renormalization primitive of the exponential time-fading
        consumer (:class:`repro.extensions.decayed.
        DecayedFrequentItemsSketch`): dividing the whole summary by the
        current decay scale keeps counters inside float range without
        changing any reported (decayed) estimate.  Counters that
        underflow to zero are purged — they represent weight decayed
        below representability, which is exactly when dropping them is
        harmless.
        """
        if factor < 0.0:
            raise InvalidParameterError(f"rescale factor must be >= 0, got {factor}")
        self.store.scale_all(factor)
        self.store.purge_nonpositive()
        self.offset *= factor
        self.stream_weight *= factor

    # -- introspection ---------------------------------------------------------

    def is_empty(self) -> bool:
        """True if the kernel has processed no weight."""
        return self.stream_weight == 0.0

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchKernel(k={self.k}, policy={self.policy.describe()}, "
            f"backend={self.backend!r}, active={len(self.store)}, "
            f"N={self.stream_weight:g}, offset={self.offset:g})"
        )
