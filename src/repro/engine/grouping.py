"""Sort-free, allocation-light batch grouping for the ingest kernel.

``ingest_batch`` needs every batch collapsed into per-key groups: the
distinct keys, and for each update the index of its key's group.  The
obvious tool — ``np.unique(items, return_inverse=True)`` — pays an
``O(n log n)`` comparison sort per window and allocates fresh scratch
every call.  :class:`BatchGrouper` replaces it with the same structure
the paper uses for the counters themselves: an open-addressing hash
table, probed with vectorized gather/scatter rounds, over *reusable*
preallocated buffers.

* **No sort.**  Keys are hashed (``fmix64``) into a power-of-two scratch
  table at most half full; each probing round resolves every key whose
  slot already holds it and advances the shrinking remainder one slot.
  Expected rounds are O(1), every round is a handful of array ops.
* **First-occurrence order.**  Group ids are assigned by each key's
  first position in the batch, so order-sensitive stores (builtin dict,
  linear probing) see inserts in exactly the order the scalar loop
  would issue them — bit-identical layouts, hence bit-identical
  serialized bytes.
* **Reusable scratch.**  The hash table and per-item buffers persist
  across calls (an epoch stamp makes clearing free); buffers grow
  geometrically on demand and are never shrunk.

>>> import numpy as np
>>> grouper = BatchGrouper()
>>> items = np.array([9, 4, 9, 9, 7, 4], dtype=np.uint64)
>>> uniq, inverse, num_groups = grouper.group(items)
>>> uniq.tolist(), inverse.tolist(), num_groups
([9, 4, 7], [0, 1, 0, 0, 2, 1], 3)
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mixers import fmix64_array
from repro.native import kernels_if_enabled

#: Smallest per-item buffer size; keeps tiny batches from reallocating.
_MIN_CAPACITY = 4096


class BatchGrouper:
    """Groups key batches into first-occurrence order without sorting."""

    __slots__ = (
        "_capacity",
        "_table_mask",
        "_table_keys",
        "_stamps",
        "_first",
        "_epoch",
        "_slot_buf",
        "_mark_buf",
        "_rank_buf",
    )

    def __init__(self) -> None:
        self._capacity = 0
        self._epoch = 0
        self._ensure(_MIN_CAPACITY)

    def _ensure(self, n: int) -> None:
        """Guarantee buffers for a batch of ``n`` items."""
        if n <= self._capacity:
            return
        capacity = _MIN_CAPACITY
        while capacity < n:
            capacity *= 2
        table_size = capacity * 2  # load factor <= 1/2
        self._capacity = capacity
        self._table_mask = table_size - 1
        self._table_keys = np.zeros(table_size, dtype=np.uint64)
        self._stamps = np.zeros(table_size, dtype=np.int64)
        self._first = np.empty(table_size, dtype=np.int64)
        self._slot_buf = np.empty(capacity, dtype=np.int64)
        self._mark_buf = np.empty(capacity, dtype=bool)
        self._rank_buf = np.empty(capacity, dtype=np.int64)

    def group(
        self, items: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Collapse ``items`` into ``(uniq, inverse, num_groups)``.

        ``uniq`` holds the distinct keys in first-occurrence order,
        ``inverse[i]`` is the group index of ``items[i]`` (so
        ``uniq[inverse] == items`` element-wise), and ``num_groups ==
        len(uniq)``.  ``uniq`` and ``inverse`` are freshly allocated
        outputs; the internal scratch is reused across calls.
        """
        n = items.shape[0]
        if n == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int64),
                0,
            )
        self._ensure(n)
        self._epoch += 1
        epoch = self._epoch
        kernels = kernels_if_enabled()
        if kernels is not None:
            # One scalar claim walk in C.  Slot choices may differ from
            # the vectorized race below, but the outputs cannot: both
            # assign group ids by first occurrence in the batch.
            items = np.require(items, dtype=np.uint64, requirements=("C", "A"))
            inverse = np.empty(n, dtype=np.int64)
            uniq_buf = np.empty(n, dtype=np.uint64)
            num_groups = kernels.group(
                items,
                self._table_keys,
                self._stamps,
                self._first,
                inverse,
                uniq_buf,
                epoch,
            )
            return uniq_buf[:num_groups], inverse, num_groups
        table_keys = self._table_keys
        stamps = self._stamps
        mask = self._table_mask
        # Claim a scratch-table slot per distinct key by probing rounds:
        # gather every active key's slot at once, let unclaimed slots be
        # claimed (last writer wins; losers see the mismatch and move on),
        # and advance only the still-unresolved remainder.
        slots = self._slot_buf[:n]
        hashed = fmix64_array(items)
        np.bitwise_and(hashed, np.uint64(mask), out=hashed)
        slots[:] = hashed
        active = np.arange(n)
        while True:
            s = slots[active]
            vacant = stamps[s] != epoch
            if vacant.any():
                claimed = s[vacant]
                table_keys[claimed] = items[active[vacant]]
                stamps[claimed] = epoch
            unresolved = table_keys[s] != items[active]
            if not unresolved.any():
                break
            active = active[unresolved]
            slots[active] = (slots[active] + 1) & mask
        # First-occurrence numbering: reversed fancy assignment makes the
        # earliest batch position win per slot, marking group leaders;
        # a running count over the leader mask yields dense group ids in
        # first-occurrence order — no sort anywhere.
        first = self._first
        first[slots[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        firsts = first[slots]
        mark = self._mark_buf[:n]
        mark[:] = False
        mark[firsts] = True
        rank = self._rank_buf[:n]
        np.cumsum(mark, out=rank)
        rank -= 1
        inverse = rank[firsts]
        uniq = items[mark]
        return uniq, inverse, int(rank[n - 1]) + 1
