"""Query-side engine over a :class:`~repro.engine.kernel.SketchKernel`.

One :class:`QueryEngine` turns a kernel's raw state — counters, offset,
stream weight — into the user-facing answers of Section 2.3.1: hybrid
point estimates with deterministic ``[lower_bound, upper_bound]``
brackets, vectorized batch estimates, and heavy-hitter row assembly
under the single :class:`~repro.core.row.ErrorType` convention shared by
every sketch in the library.

The engine reads the kernel live (no snapshotting), so one instance can
be constructed next to the kernel and queried forever.

>>> from repro.engine.kernel import SketchKernel
>>> kernel = SketchKernel(64, seed=1)
>>> kernel.update(7, 5.0)
>>> query = QueryEngine(kernel)
>>> query.estimate(7), query.estimate(8)
(5.0, 0.0)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.hashing.mixers import items_to_u64_array
from repro.types import ItemId


class QueryEngine:
    """Point queries, batch estimates, and heavy-hitter reports for a kernel."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: SketchKernel) -> None:
        self.kernel = kernel

    # -- point queries ---------------------------------------------------------

    def estimate(self, item: ItemId) -> float:
        """The hybrid point estimate of Section 2.3.1.

        ``c(i) + offset`` when the item holds a counter (SS-like), else 0
        (MG-like).  Always within ``[lower_bound, upper_bound]``.
        """
        count = self.kernel.store.get(item)
        if count is None:
            return 0.0
        return count + self.kernel.offset

    def lower_bound(self, item: ItemId) -> float:
        """A value guaranteed ``<= f(item)``: the raw MG counter."""
        count = self.kernel.store.get(item)
        return 0.0 if count is None else count

    def upper_bound(self, item: ItemId) -> float:
        """A value guaranteed ``>= f(item)``: counter plus total offset."""
        count = self.kernel.store.get(item)
        return self.kernel.offset if count is None else count + self.kernel.offset

    def row(self, item: ItemId) -> HeavyHitterRow:
        """The full (estimate, bounds) record for one item."""
        return HeavyHitterRow(
            item, self.estimate(item), self.lower_bound(item), self.upper_bound(item)
        )

    # -- batch queries ---------------------------------------------------------

    def estimate_batch(self, items: object) -> np.ndarray:
        """Vectorized :meth:`estimate` over an array of item identifiers.

        ``items`` is any 1-D integer array or sequence (converted
        losslessly, exactly as the ingest paths convert their keys);
        repeated and absent keys are both fine.  Returns a float64 array
        with ``out[i] == estimate(items[i])`` element-for-element — one
        bulk :meth:`~repro.table.base.CounterStore.get_many` probe
        instead of one Python call per key.

        >>> from repro.engine.kernel import SketchKernel
        >>> kernel = SketchKernel(64, seed=1)
        >>> kernel.update(7, 5.0)
        >>> QueryEngine(kernel).estimate_batch([7, 8, 7])
        array([5., 0., 5.])
        """
        keys = items_to_u64_array(items)
        if keys.ndim != 1:
            raise InvalidUpdateError(
                f"items must be a 1-D array, got shape {keys.shape}"
            )
        if keys.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        counts = self.kernel.store.get_many(keys)
        tracked = ~np.isnan(counts)
        # where() evaluates the NaN lanes too, so silence the invalid-add
        # warning they would raise; the untracked lanes are discarded.
        with np.errstate(invalid="ignore"):
            return np.where(tracked, counts + self.kernel.offset, 0.0)

    # -- heavy-hitter reports --------------------------------------------------

    def frequent_items(
        self,
        error_type: ErrorType = ErrorType.NO_FALSE_POSITIVES,
        threshold: Optional[float] = None,
    ) -> list[HeavyHitterRow]:
        """Items whose frequency (may) exceed ``threshold``, sorted by estimate.

        With ``NO_FALSE_POSITIVES`` an item is reported only if its lower
        bound clears the threshold — everything reported truly qualifies.
        With ``NO_FALSE_NEGATIVES`` the upper bound is compared — every
        true heavy hitter is reported, possibly with borderline extras.
        The default threshold is the kernel's offset, the tightest level
        at which the reports are meaningful.
        """
        kernel = self.kernel
        if threshold is None:
            threshold = kernel.offset
        if threshold < 0:
            raise InvalidParameterError(f"threshold must be >= 0, got {threshold}")
        rows = []
        offset = kernel.offset
        for item, count in kernel.store.items():
            lower = count
            upper = count + offset
            qualifies = (
                lower >= threshold
                if error_type is ErrorType.NO_FALSE_POSITIVES
                else upper >= threshold
            )
            if qualifies:
                rows.append(HeavyHitterRow(item, upper, lower, upper))
        rows.sort(key=lambda r: (-r.estimate, r.item))
        return rows

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """(φ)-heavy hitters: items with ``f_i >= phi * N`` (Section 1.2)."""
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        return self.frequent_items(error_type, phi * self.kernel.stream_weight)

    def to_rows(self) -> list[HeavyHitterRow]:
        """All tracked items as rows, sorted by estimate descending."""
        offset = self.kernel.offset
        rows = [
            HeavyHitterRow(item, count + offset, count, count + offset)
            for item, count in self.kernel.store.items()
        ]
        rows.sort(key=lambda r: (-r.estimate, r.item))
        return rows
