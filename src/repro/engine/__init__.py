"""The shared ingest/query engine every sketch variant composes.

* :class:`SketchKernel` — the paper's Algorithm 4 state machine in
  reusable form: counter store, decrement policy, offset / stream-weight
  accounting, PRNG, and the scalar + segmented-batch ingestion paths.
* :class:`QueryEngine` — estimates, deterministic bounds, vectorized
  ``estimate_batch``, and heavy-hitter row assembly over a kernel.

``FrequentItemsSketch`` is a thin facade over one kernel;
``ShardedFrequentItemsSketch`` runs one kernel per shard and queries a
merged kernel; the windowed, sampled, and decayed extensions compose
kernels directly.  See ``docs/extending.md`` for building your own
consumer.
"""

from repro.engine.grouping import BatchGrouper
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine

__all__ = ["SketchKernel", "QueryEngine", "BatchGrouper"]
