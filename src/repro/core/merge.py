"""Aggregation-tree merging helpers (Section 3).

Algorithm 5 itself is :meth:`FrequentItemsSketch.merge`; these helpers
exercise the property prior work lacked — that summaries may be combined
via an *arbitrary* aggregation tree without compounding error — and give
the two canonical shapes: a left-deep linear fold (merging many
summaries "into" one, e.g. a query-time scatter-gather) and a balanced
pairwise tree (a distributed reduction).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import InvalidParameterError


def merge_linear(sketches: Sequence[FrequentItemsSketch]) -> FrequentItemsSketch:
    """Fold every sketch into the first, left to right; returns it.

    The shape used when millions of per-hour summaries are merged at
    query time (the Section 3 motivating example).  The inputs after the
    first are not modified.

    Parameters
    ----------
    sketches : sequence of FrequentItemsSketch
        At least one sketch; the first is mutated and returned.

    Returns
    -------
    FrequentItemsSketch
        ``sketches[0]``, now holding the combined summary.

    Raises
    ------
    InvalidParameterError
        If the sequence is empty.

    Examples
    --------
    >>> parts = [FrequentItemsSketch(64, seed=s) for s in range(3)]
    >>> for part in parts:
    ...     part.update(7, 2.0)
    >>> merge_linear(parts).estimate(7)
    6.0
    """
    if not sketches:
        raise InvalidParameterError("need at least one sketch to merge")
    result = sketches[0]
    for other in sketches[1:]:
        result.merge(other)
    return result


def merge_pairwise_tree(
    sketches: Sequence[FrequentItemsSketch],
) -> FrequentItemsSketch:
    """Merge by repeatedly pairing neighbours — a balanced binary tree.

    This is the aggregation pattern of a distributed reduction; Theorem 5
    guarantees the same error bound as the linear fold because the bound
    depends only on total weight and surviving counter mass, not the tree
    shape (the tests verify this equivalence empirically).  Sketches in
    even positions absorb their right neighbours and are reused as the
    next round's inputs.

    Parameters
    ----------
    sketches : sequence of FrequentItemsSketch
        At least one sketch; even-position sketches are mutated.

    Returns
    -------
    FrequentItemsSketch
        The tree root holding the combined summary.

    Raises
    ------
    InvalidParameterError
        If the sequence is empty.

    Examples
    --------
    >>> parts = [FrequentItemsSketch(64, seed=s) for s in range(4)]
    >>> for part in parts:
    ...     part.update(7, 2.0)
    >>> merge_pairwise_tree(parts).estimate(7)
    8.0
    """
    if not sketches:
        raise InvalidParameterError("need at least one sketch to merge")
    layer = list(sketches)
    while len(layer) > 1:
        next_layer = []
        for index in range(0, len(layer) - 1, 2):
            next_layer.append(layer[index].merge(layer[index + 1]))
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
    return layer[0]
