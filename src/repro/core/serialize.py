"""Compact binary serialization of the flat and sharded sketches.

Real deployments (the Section 3 scenarios) persist summaries and merge
them later, often on different machines, so a stable wire format is part
of making the sketch production-usable.  Both formats are little-endian
and versioned; the authoritative byte-level specification (offsets
included, validated by a test that parses a blob with nothing but the
documented offsets) lives in ``docs/serialization.md``.

Flat format (:func:`sketch_to_bytes` / :func:`sketch_from_bytes`):

===========  =====  ====================================================
field        bytes  meaning
===========  =====  ====================================================
magic        4      ``b"RFI1"``
k            4      uint32 ``max_counters``
backend      1      0 = probing, 1 = dict, 2 = robinhood, 3 = columnar;
                    bit 7 (0x80) set = adaptive table growth
policy kind  1      0 = sample-quantile, 1 = exact-kth, 2 = global-min
policy p     8      float64 quantile / fraction (0 for global-min)
sample size  4      uint32 ℓ (0 when not applicable)
seed         8      uint64 construction seed (masked)
offset       8      float64 accumulated decrement offset
weight       8      float64 stream weight N
count        4      uint32 number of live counters
records      16×n   ``(uint64 item, float64 count)`` pairs
===========  =====  ====================================================

Sharded format (:func:`sharded_to_bytes` / :func:`sharded_from_bytes`):
a 33-byte header — magic ``b"RFS1"``, a version byte, uint32 shard
count, uint64 partition seed, float64 carried-over offset and stream
weight — followed by one *frame* per shard: a uint32 byte length and
then a complete flat-format blob of that length.

Deserialization reconstructs an operational sketch: it can keep
receiving updates and merging.  The PRNG restarts from the stored seed
(sampling decisions after a round trip may differ from the un-serialized
original's future, but the summary state — counters, offset, weight — is
preserved exactly, which is what the error guarantees depend on).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import (
    ExactKthLargestPolicy,
    GlobalMinPolicy,
    SampleQuantilePolicy,
)
from repro.engine.kernel import SketchKernel
from repro.errors import ReproError, SerializationError

_MAGIC = b"RFI1"
_HEADER = struct.Struct("<4sIBBdIQddI")
_RECORD = struct.Struct("<Qd")

_SHARDED_MAGIC = b"RFS1"
_SHARDED_VERSION = 1
#: magic, version, num_shards, partition seed, extra offset, extra weight
_SHARDED_HEADER = struct.Struct("<4sBIQdd")
_FRAME_LENGTH = struct.Struct("<I")

_BACKEND_CODES = {"probing": 0, "dict": 1, "robinhood": 2, "columnar": 3}
_BACKEND_NAMES = {code: name for name, code in _BACKEND_CODES.items()}

#: High bit of the backend byte: set when the counter table uses
#: adaptive (doubling) growth.  Default-mode blobs are byte-identical to
#: the pre-flag format, so existing golden hashes stay valid.
_ADAPTIVE_GROWTH_FLAG = 0x80

#: Decode-time sanity cap on ``k``.  Counter tables are pre-allocated,
#: so a corrupt (or hostile) header with ``k`` in the billions would
#: commit gigabytes before any later validation could object; 2**26
#: counters (~a 1.5 GB probing table) is far beyond any configuration
#: the paper or this repo's benchmarks reach.
MAX_DECODE_COUNTERS = 1 << 26


def _encode_policy(policy) -> tuple[int, float, int]:
    if isinstance(policy, SampleQuantilePolicy):
        return 0, policy.quantile, policy.sample_size
    if isinstance(policy, ExactKthLargestPolicy):
        return 1, policy.fraction, 0
    if isinstance(policy, GlobalMinPolicy):
        return 2, 0.0, 0
    raise SerializationError(
        f"cannot serialize custom decrement policy {type(policy).__name__}"
    )


def _decode_policy(kind: int, param: float, sample_size: int):
    try:
        if kind == 0:
            return SampleQuantilePolicy(param, sample_size)
        if kind == 1:
            return ExactKthLargestPolicy(param)
        if kind == 2:
            return GlobalMinPolicy()
    except ReproError as exc:
        # A known policy kind with parameters outside its domain: the
        # blob is corrupt, not the caller's arguments.
        raise SerializationError(f"invalid policy parameters: {exc}") from exc
    raise SerializationError(f"unknown policy kind {kind}")


def sketch_to_bytes(sketch: FrequentItemsSketch) -> bytes:
    """Serialize ``sketch`` to the versioned binary format."""
    backend_code = _BACKEND_CODES.get(sketch.backend)
    if backend_code is None:
        raise SerializationError(f"unknown backend {sketch.backend!r}")
    if sketch.growth == "adaptive":
        backend_code |= _ADAPTIVE_GROWTH_FLAG
    kind, param, sample_size = _encode_policy(sketch.policy)
    # serial_items (when the store offers it) yields a re-insertion
    # order that reconstructs the physical layout exactly — required
    # for from_bytes(to_bytes(s)) to be byte-faithful on the probing
    # layouts; for every other state and store it equals items().
    store = sketch._store
    counters = list(getattr(store, "serial_items", store.items)())
    header = _HEADER.pack(
        _MAGIC,
        sketch.max_counters,
        backend_code,
        kind,
        param,
        sample_size,
        sketch.seed & ((1 << 64) - 1),
        sketch.maximum_error,
        sketch.stream_weight,
        len(counters),
    )
    body = b"".join(_RECORD.pack(item, count) for item, count in counters)
    return header + body


def sketch_from_bytes(blob: bytes) -> FrequentItemsSketch:
    """Reconstruct a sketch from :func:`sketch_to_bytes` output."""
    if blob[:4] == _SHARDED_MAGIC:
        raise SerializationError(
            "this is a sharded frame; use ShardedFrequentItemsSketch.from_bytes"
        )
    if len(blob) < _HEADER.size:
        raise SerializationError(
            f"blob too short for header: {len(blob)} < {_HEADER.size}"
        )
    (
        magic,
        k,
        backend_code,
        kind,
        param,
        sample_size,
        seed,
        offset,
        weight,
        count,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    if k > MAX_DECODE_COUNTERS:
        raise SerializationError(
            f"header claims k={k} counters, beyond the decode cap "
            f"{MAX_DECODE_COUNTERS} (corrupt blob?)"
        )
    growth = "adaptive" if backend_code & _ADAPTIVE_GROWTH_FLAG else "fixed"
    backend = _BACKEND_NAMES.get(backend_code & ~_ADAPTIVE_GROWTH_FLAG)
    if backend is None:
        raise SerializationError(f"unknown backend code {backend_code}")
    expected = _HEADER.size + count * _RECORD.size
    if len(blob) != expected:
        raise SerializationError(
            f"blob length {len(blob)} does not match header (expected {expected})"
        )
    policy = _decode_policy(kind, param, sample_size)
    if count:
        records = np.frombuffer(
            blob, dtype=np.dtype([("item", "<u8"), ("count", "<f8")]),
            count=count, offset=_HEADER.size,
        )
        items = records["item"]
        counts = records["count"]
    else:
        items = np.empty(0, dtype=np.uint64)
        counts = np.empty(0, dtype=np.float64)
    # The kernel's one shared reconstruction path (also used by copy()):
    # bulk insert preserves record order on order-sensitive layouts and
    # is vectorized on the columnar backend; the PRNG restarts from the
    # stored seed.
    try:
        kernel = SketchKernel.restore(
            k, policy, backend, seed, items, counts, offset, weight, growth=growth
        )
    except ReproError as exc:
        # e.g. a flipped k below the minimum, or more records than the
        # stored capacity admits: corrupt state, reported as such.
        raise SerializationError(f"blob decodes to invalid state: {exc}") from exc
    return FrequentItemsSketch._from_kernel(kernel)


def sharded_to_bytes(sketch) -> bytes:
    """Serialize a :class:`ShardedFrequentItemsSketch` to the framed format.

    The header carries the partition parameters and the carried-over
    (offset, weight) accumulators; each shard follows as a length-
    prefixed flat-format frame, so shard payloads round-trip through the
    exact same code path as standalone sketches.
    """
    frames = []
    for shard in sketch._shards:
        frame = sketch_to_bytes(shard)
        frames.append(_FRAME_LENGTH.pack(len(frame)))
        frames.append(frame)
    header = _SHARDED_HEADER.pack(
        _SHARDED_MAGIC,
        _SHARDED_VERSION,
        sketch.num_shards,
        sketch.seed & ((1 << 64) - 1),
        sketch._extra_offset,
        sketch._extra_weight,
    )
    return header + b"".join(frames)


def sharded_from_bytes(blob: bytes):
    """Reconstruct a sharded sketch from :func:`sharded_to_bytes` output."""
    from repro.sharded.sketch import ShardedFrequentItemsSketch

    if len(blob) < _SHARDED_HEADER.size:
        raise SerializationError(
            f"blob too short for sharded header: {len(blob)} < {_SHARDED_HEADER.size}"
        )
    magic, version, num_shards, seed, extra_offset, extra_weight = (
        _SHARDED_HEADER.unpack_from(blob, 0)
    )
    if magic != _SHARDED_MAGIC:
        raise SerializationError(f"bad sharded magic {magic!r}")
    if version != _SHARDED_VERSION:
        raise SerializationError(f"unsupported sharded format version {version}")
    if num_shards < 1:
        raise SerializationError(f"invalid shard count {num_shards}")
    shards = []
    cursor = _SHARDED_HEADER.size
    for index in range(num_shards):
        if cursor + _FRAME_LENGTH.size > len(blob):
            raise SerializationError(
                f"truncated sharded blob: missing frame {index} length"
            )
        (frame_length,) = _FRAME_LENGTH.unpack_from(blob, cursor)
        cursor += _FRAME_LENGTH.size
        if cursor + frame_length > len(blob):
            raise SerializationError(
                f"truncated sharded blob: frame {index} wants {frame_length} bytes"
            )
        shards.append(sketch_from_bytes(blob[cursor : cursor + frame_length]))
        cursor += frame_length
    if cursor != len(blob):
        raise SerializationError(
            f"sharded blob has {len(blob) - cursor} trailing bytes"
        )
    first = shards[0]
    for index, shard in enumerate(shards):
        if shard.max_counters != first.max_counters or shard.backend != first.backend:
            raise SerializationError(
                f"shard {index} configuration does not match shard 0"
            )
    return ShardedFrequentItemsSketch._from_parts(
        shards, seed, extra_offset, extra_weight
    )
