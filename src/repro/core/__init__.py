"""The paper's contribution: the optimized weighted Misra-Gries sketch.

* :class:`FrequentItemsSketch` — Algorithm 4 (SMED / SMIN and the whole
  Figure-3 quantile family) with the Section 2.3.1 hybrid estimator and
  the Section 2.3.3 storage layout.
* :mod:`repro.core.policies` — the pluggable ``DecrementCounters()``
  strategies: sampled quantile (Algorithm 4), exact k*-th largest
  (Algorithm 3 / MED), global minimum.
* :mod:`repro.core.merge` — Algorithm 5 merging plus aggregation-tree
  helpers.
* :mod:`repro.core.serialize` — compact binary serialization.
"""

from repro.core.frequent_items import FrequentItemsSketch
from repro.core.merge import merge_linear, merge_pairwise_tree
from repro.core.policies import (
    DecrementPolicy,
    ExactKthLargestPolicy,
    GlobalMinPolicy,
    SampleQuantilePolicy,
)
from repro.core.row import ErrorType, HeavyHitterRow

__all__ = [
    "FrequentItemsSketch",
    "DecrementPolicy",
    "SampleQuantilePolicy",
    "ExactKthLargestPolicy",
    "GlobalMinPolicy",
    "ErrorType",
    "HeavyHitterRow",
    "merge_linear",
    "merge_pairwise_tree",
]
