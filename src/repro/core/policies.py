"""``DecrementCounters()`` strategies.

The single design axis separating the paper's algorithms is *what value
gets subtracted from every counter* when the table is full:

=====================  =======================================  ==========
Policy                 Decrement value ``c*``                   Algorithm
=====================  =======================================  ==========
SampleQuantilePolicy   quantile of ``ell`` sampled counters      Alg. 4
(q = 0.5)              sample median                             SMED
(q = 0.0)              sample minimum                            SMIN
(other q)              the Figure-3 tradeoff sweep               Sec. 4.4
ExactKthLargestPolicy  exact k*-th largest counter               Alg. 3 MED
GlobalMinPolicy        exact minimum counter                     cf. RBMC
=====================  =======================================  ==========

A larger ``c*`` frees more counters per pass (fewer, cheaper-amortized
decrements — speed) but adds more error per pass; Section 4.4 maps this
tradeoff empirically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.selection.quickselect import kth_largest
from repro.selection.sampling import DEFAULT_SAMPLE_SIZE, sample_quantile
from repro.table.base import CounterStore


class DecrementPolicy(ABC):
    """Chooses the decrement value ``c*`` from the live counter multiset."""

    @abstractmethod
    def decrement_value(self, store: CounterStore, rng: Xoroshiro128PlusPlus) -> float:
        """Return ``c* > 0`` given the current (full) counter store."""

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable label used by benchmark reports."""


class SampleQuantilePolicy(DecrementPolicy):
    """Algorithm 4: decrement by a quantile of a random counter sample.

    ``quantile = 0.5`` reproduces SMED, ``0.0`` SMIN; any value in
    ``[0, 1]`` reproduces a point on the Section 4.4 tradeoff curve.
    ``sample_size`` defaults to the paper's ℓ = 1024 (Section 2.3.2).
    When the table holds no more counters than ``sample_size`` the whole
    multiset is used, making the quantile exact.
    """

    __slots__ = ("quantile", "sample_size", "selector")

    def __init__(
        self,
        quantile: float = 0.5,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        selector: str = "auto",
    ) -> None:
        if not 0.0 <= quantile <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {quantile}")
        if sample_size <= 0:
            raise InvalidParameterError(
                f"sample_size must be positive, got {sample_size}"
            )
        if selector not in ("auto", "quickselect"):
            raise InvalidParameterError(f"unknown selector {selector!r}")
        self.quantile = quantile
        self.sample_size = sample_size
        #: How the sample order statistic is computed; see
        #: :func:`repro.selection.sampling.sample_quantile`.
        self.selector = selector

    def decrement_value(self, store: CounterStore, rng: Xoroshiro128PlusPlus) -> float:
        if len(store) <= self.sample_size:
            sample = store.values_list()
        else:
            sample = store.sample_values(self.sample_size, rng)
        return sample_quantile(sample, self.quantile, rng, self.selector)

    def describe(self) -> str:
        if self.quantile == 0.5:
            return f"SMED(ell={self.sample_size})"
        if self.quantile == 0.0:
            return f"SMIN(ell={self.sample_size})"
        return f"SQ{int(round(self.quantile * 100))}(ell={self.sample_size})"


class ExactKthLargestPolicy(DecrementPolicy):
    """Algorithm 3 (MED): decrement by the exact k*-th largest counter.

    ``fraction`` positions k* relative to the table size; the paper's
    exposition uses k* = k/2 (``fraction = 0.5``).  Requires copying the
    counter values out of the table for quickselect — the extra k words
    of scratch space Section 2.2 calls out as the initial proposal's
    disadvantage, which our space model charges it for.
    """

    __slots__ = ("fraction",)

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def decrement_value(self, store: CounterStore, rng: Xoroshiro128PlusPlus) -> float:
        values = store.values_list()
        k_star = max(1, int(self.fraction * len(values)))
        return kth_largest(values, k_star, rng)

    def describe(self) -> str:
        return f"MED(k*={self.fraction:g}k)"


class GlobalMinPolicy(DecrementPolicy):
    """Decrement by the exact global minimum counter.

    This is the most accurate / slowest extreme: with this policy each
    decrement pass frees only the minimum-valued counters, so passes can
    recur on nearly every update (the RBMC pathology of Section 1.3.4).
    Provided for ablations; the RBMC *baseline* (which additionally caps
    the decrement at the update weight ``min(delta, c_min)``) lives in
    :mod:`repro.baselines.rbmc`.
    """

    __slots__ = ()

    def decrement_value(self, store: CounterStore, rng: Xoroshiro128PlusPlus) -> float:
        return min(store.values_list())

    def describe(self) -> str:
        return "GMIN"


def smed_policy(sample_size: int = DEFAULT_SAMPLE_SIZE) -> SampleQuantilePolicy:
    """The paper's recommended configuration: sample median, ℓ = 1024."""
    return SampleQuantilePolicy(0.5, sample_size)


def smin_policy(sample_size: int = DEFAULT_SAMPLE_SIZE) -> SampleQuantilePolicy:
    """The accuracy-leaning variant: sample minimum, ℓ = 1024."""
    return SampleQuantilePolicy(0.0, sample_size)
