"""Result records and error-direction selectors for heavy-hitter queries."""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.types import ItemId


class ErrorType(enum.Enum):
    """Which side a heavy-hitter report may err on.

    A counter-based summary brackets each frequency between a lower and an
    upper bound, so a threshold query can be answered two ways:

    * ``NO_FALSE_POSITIVES`` — report items whose *lower* bound clears the
      threshold.  Everything reported truly qualifies, but a borderline
      heavy hitter may be missed.
    * ``NO_FALSE_NEGATIVES`` — report items whose *upper* bound clears the
      threshold.  Every true heavy hitter is reported (this is the
      (φ, ε)-guarantee of Section 1.2), at the cost of possible false
      positives whose frequency is slightly below the threshold.
    """

    NO_FALSE_POSITIVES = "no_false_positives"
    NO_FALSE_NEGATIVES = "no_false_negatives"


class HeavyHitterRow(NamedTuple):
    """One reported item with its estimate and deterministic bracket."""

    item: ItemId
    estimate: float
    lower_bound: float
    upper_bound: float
