"""The optimized weighted Misra-Gries sketch (Algorithm 4 + Section 2.3).

This is the paper's contribution in one class:

* **Weighted updates in amortized O(1)** — when the table is full, all
  counters are decremented by ``c*``, a sampled quantile of the live
  counter values (Algorithm 4).  With the default median policy at least
  ~half the counters are freed per pass w.h.p., so passes occur at most
  once every Ω(k) updates (Theorem 3) while the error guarantee
  ``0 <= f_i - f̂_i <= N^res(j)/(k/c - j)`` holds w.h.p. (Theorem 4).
* **Hybrid MG/SS estimator (Section 2.3.1)** — an ``offset`` accumulates
  every ``c*``; tracked items report ``c(i) + offset`` (SS-style, often
  exactly correct for genuinely frequent items), untracked items report 0
  (MG-style, exactly correct for absent items).  Deterministic bounds:
  ``c(i) <= f_i <= c(i) + offset``.
* **Compact storage (Section 2.3.3)** — counters live in a linear-probing
  table of parallel arrays with in-place backward-shift deletion
  (``backend="probing"``); a builtin-dict backend is provided because
  CPython's dict is itself a C-coded open-addressing table and is the
  pragmatic fast path in pure Python (ablation benchmark included).
* **O(k) merging (Algorithm 5, Section 3.2)** — the other summary's
  counters are replayed through ``update`` in random order; offsets and
  stream weights add.  Error after any aggregation tree obeys
  ``f_i - f̂_i <= (N - C)/k*`` (Theorem 5).

>>> sketch = FrequentItemsSketch(64, seed=1)
>>> for item, weight in [(7, 100.0), (8, 50.0), (7, 25.0)]:
...     sketch.update(item, weight)
>>> sketch.estimate(7)
125.0
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.policies import DecrementPolicy, SampleQuantilePolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.errors import (
    IncompatibleSketchError,
    InvalidParameterError,
    InvalidUpdateError,
)
from repro.metrics.instrumentation import OpStats
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.model import as_batch, as_updates
from repro.table import make_store
from repro.table.columnar import ColumnarCounterStore
from repro.table.dictstore import DictCounterStore
from repro.types import ItemId, StreamUpdate, Weight


class FrequentItemsSketch:
    """Approximate frequencies and heavy hitters over weighted streams.

    Parameters
    ----------
    max_counters:
        The paper's ``k`` — the number of counters maintained.  Larger is
        more accurate and (beyond a point) faster per update, at linearly
        more space.  Must be at least 2.
    policy:
        The ``DecrementCounters()`` strategy.  Defaults to the paper's
        recommended SMED configuration (sample median, ℓ = 1024).
    backend:
        ``"probing"`` (default) for the faithful Section 2.3.3 layout, or
        ``"dict"`` for the CPython-pragmatic fast path.
    seed:
        Controls counter sampling, quickselect pivots, the merge
        iteration order, and the table's hash — two sketches built with
        the same seed and inputs are identical.
    """

    __slots__ = (
        "_k",
        "_policy",
        "_backend",
        "_seed",
        "_store",
        "_rng",
        "_offset",
        "_stream_weight",
        "stats",
    )

    def __init__(
        self,
        max_counters: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "probing",
        seed: int = 0,
    ) -> None:
        if max_counters < 2:
            raise InvalidParameterError(
                f"max_counters must be at least 2, got {max_counters}"
            )
        self._k = max_counters
        self._policy = policy if policy is not None else SampleQuantilePolicy()
        self._backend = backend
        self._seed = seed
        self._store = make_store(backend, max_counters, seed=seed)
        self._rng = Xoroshiro128PlusPlus(seed ^ 0x5EED_0F_5EED)
        self._offset = 0.0
        self._stream_weight = 0.0
        self.stats = OpStats()

    # -- configuration introspection ------------------------------------------

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``.

        Examples
        --------
        >>> FrequentItemsSketch(64).max_counters
        64
        """
        return self._k

    @property
    def policy(self) -> DecrementPolicy:
        """The active decrement policy (SMED when none was given).

        Examples
        --------
        >>> FrequentItemsSketch(64).policy.describe()
        'SMED(ell=1024)'
        """
        return self._policy

    @property
    def backend(self) -> str:
        """The counter-store backend name.

        Examples
        --------
        >>> FrequentItemsSketch(64).backend
        'probing'
        """
        return self._backend

    @property
    def seed(self) -> int:
        """The seed this sketch was constructed with.

        Examples
        --------
        >>> FrequentItemsSketch(64, seed=9).seed
        9
        """
        return self._seed

    # -- state introspection ---------------------------------------------------

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([1, 2, 1])
        >>> sketch.num_active
        2
        """
        return len(self._store)

    @property
    def stream_weight(self) -> float:
        """Total weight ``N`` processed (including merged-in sketches).

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(5, 2.5)
        >>> sketch.stream_weight
        2.5
        """
        return self._stream_weight

    @property
    def maximum_error(self) -> float:
        """The accumulated offset: a bound on ``f_i - lower_bound(i)``.

        This is the sum of all decrement values ``c*`` so far; every
        estimate's uncertainty interval has exactly this width.

        Examples
        --------
        >>> FrequentItemsSketch(64).maximum_error
        0.0
        """
        return self._offset

    def is_empty(self) -> bool:
        """True if the sketch has processed no weight.

        Examples
        --------
        >>> FrequentItemsSketch(64).is_empty()
        True
        """
        return self._stream_weight == 0.0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, item: ItemId) -> bool:
        return self._store.get(item) is not None

    # -- updates ---------------------------------------------------------------

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted stream update ``(item, weight)``.

        Amortized O(1): the only non-constant step is a decrement pass,
        which frees a constant fraction of the ``k`` counters and so can
        recur at most once every Ω(k) updates (Theorem 3).

        Parameters
        ----------
        item : int
            The 64-bit item identifier (helpers in :mod:`repro.hashing`
            fold strings/bytes onto that space).
        weight : float, optional
            Positive update weight ``delta_j`` (1.0 when omitted).

        Raises
        ------
        InvalidUpdateError
            If ``weight`` is not strictly positive.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7)
        >>> sketch.update(7, 2.0)
        >>> sketch.estimate(7)
        3.0
        """
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        self._ingest(item, weight)

    def update_all(self, updates: Iterable) -> None:
        """Consume an iterable of updates (items, pairs, or StreamUpdates).

        Bare item ids are treated as unit-weight updates, exactly as the
        stream model of Section 1.2 allows.

        Parameters
        ----------
        updates : iterable
            Any mix of bare item ids, ``(item, weight)`` pairs, and
            :class:`~repro.types.StreamUpdate` instances.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([7, (8, 3.0), 7])
        >>> sketch.estimate(7), sketch.estimate(8)
        (2.0, 3.0)
        """
        for item, weight in as_updates(updates):
            self.update(item, weight)

    def update_batch(self, items, weights=None) -> None:
        """Process a batch of weighted updates given as NumPy arrays.

        ``items`` is a 1-D array (or sequence) of 64-bit item ids and
        ``weights`` a parallel array of positive weights (all 1.0 when
        omitted).  The result is *identical* to calling :meth:`update`
        once per element in order — same counters, same offset, same
        serialized bytes — but the work is done per *distinct* key and
        per decrement pass instead of per update:

        * one grouping pass (``np.unique`` + ``np.bincount``) collapses
          duplicate keys;
        * between decrement passes, tracked keys receive one bulk
          ``add_many`` and new keys one bulk ``insert_many``;
        * decrement passes run exactly where the scalar loop would run
          them (Theorem 3's amortization: at most once every Ω(k)
          updates), so a batch triggers O(batch/k + 1) passes.

        Equivalence holds bit-for-bit when weights are exactly
        representable integers (the paper's workloads — unit weights,
        integer weights, packet bits — all are); for arbitrary reals the
        grouped additions may differ from the sequential loop by
        floating-point rounding only.

        Parameters
        ----------
        items : numpy.ndarray or sequence
            1-D array of 64-bit item identifiers.
        weights : numpy.ndarray, optional
            Parallel array of positive weights (all 1.0 when omitted).

        Examples
        --------
        >>> import numpy as np
        >>> sketch = FrequentItemsSketch(64, backend="columnar")
        >>> sketch.update_batch(np.array([7, 8, 7], dtype=np.uint64),
        ...                     np.array([1.0, 3.0, 1.0]))
        >>> sketch.estimate(7), sketch.stream_weight
        (2.0, 5.0)
        """
        items, weights = as_batch(items, weights)
        self._update_batch_validated(items, weights)

    def _update_batch_validated(self, items: np.ndarray, weights: np.ndarray) -> None:
        """:meth:`update_batch` minus input coercion.

        ``items``/``weights`` must already be the ``(uint64, float64)``
        pair :func:`repro.streams.model.as_batch` produces.  The sharded
        ingestion path validates a batch once and feeds each shard its
        slice through this entry point, skipping per-shard re-validation.
        """
        n = items.shape[0]
        if n == 0:
            return
        # Integer-valued weights make this sum exact in any order, which
        # keeps batched and scalar stream weights bit-identical.
        self._stream_weight += float(weights.sum())
        # Ingest in bounded windows: the segment scan inside
        # _ingest_batch walks the remaining window once per decrement
        # pass, so capping the window at O(k) keeps the worst case
        # (min-like policies that free one counter per pass) at the
        # scalar loop's O(n*k) instead of O(n^2).  _ingest_batch is
        # per-update-equivalent, so windowing cannot change the result.
        window = max(4096, 8 * self._k)
        if n <= window:
            self._ingest_batch(items, weights)
        else:
            for start in range(0, n, window):
                stop = start + window
                self._ingest_batch(items[start:stop], weights[start:stop])

    def _ingest_batch(self, items: np.ndarray, weights: np.ndarray) -> None:
        """Grouped counter logic, equivalent to ``_ingest`` per element.

        The batch is processed as a run of *segments* separated by
        decrement passes.  Within a segment no counter is freed, so
        updates commute into per-key groups: tracked keys take one bulk
        add, new keys one bulk insert (in first-occurrence order, which
        pins down iteration order on order-sensitive layouts).  The
        segment boundary is placed exactly where the scalar loop would
        overflow the table — the first update whose key is untracked
        once the table is full — and the decrement there replays the
        scalar code path verbatim, PRNG draws included.
        """
        store = self._store
        stats = self.stats
        k = self._k
        n = len(items)
        uniq, inverse = np.unique(items, return_inverse=True)
        num_groups = len(uniq)
        if not len(store) and num_groups <= k:
            # Bulk load: every distinct key fits an empty table, so no
            # decrement pass can trigger (weights are positive) and the
            # whole batch collapses to one grouped insert.  This is the
            # hot path for deserialization, merge into a fresh sketch,
            # and the first batch on each shard of a sharded ingest.
            sums = np.bincount(inverse, weights=weights, minlength=num_groups)
            if isinstance(store, ColumnarCounterStore):
                # Sorted layout is insertion-order independent; ``uniq``
                # is already sorted and duplicate-free.
                store.insert_many(uniq, sums)
            else:
                # Order-sensitive layouts need first-occurrence order to
                # stay bit-identical to the scalar insert sequence.
                first = np.empty(num_groups, dtype=np.int64)
                first[inverse[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
                order = np.argsort(first, kind="stable")
                store.insert_many(uniq[order], sums[order])
            stats.updates += n
            stats.inserts += num_groups
            stats.hits += n - num_groups
            return
        # Per-group live value, mirrored locally so purge survival can be
        # decided with array ops instead of store lookups.  NaN-free:
        # untracked groups carry 0.0 and a False `tracked` flag.
        initial = store.get_many(uniq)
        tracked = ~np.isnan(initial)
        val = np.where(tracked, initial, 0.0)
        first_scratch = np.empty(num_groups, dtype=np.int64)
        p = 0
        while p < n:
            room = k - len(store)
            sub = inverse[p:]
            untracked_at = np.flatnonzero(~tracked[sub])
            if untracked_at.size:
                # First occurrence (within the suffix) of each distinct
                # untracked group: reversed fancy assignment makes the
                # earliest position win, with no sort.
                groups_at = sub[untracked_at]
                first_scratch[:] = -1
                first_scratch[groups_at[::-1]] = untracked_at[::-1]
                candidates = first_scratch[first_scratch >= 0]
            else:
                candidates = untracked_at
            if candidates.size <= room:
                seg_len = n - p
                trigger = -1
                new_positions = np.sort(candidates)
            else:
                # The (room+1)-th distinct new key overflows the table:
                # that update runs the decrement, exactly as in scalar.
                bound = np.partition(candidates, room)[: room + 1]
                bound.sort()
                new_positions = bound[:room]
                seg_len = int(bound[room])
                trigger = p + seg_len
            if seg_len:
                seg_weights = np.bincount(
                    sub[:seg_len], weights=weights[p : p + seg_len],
                    minlength=num_groups,
                )
                # Positive weights make "summed to > 0" and "present in
                # the segment" the same predicate.
                add_groups = np.flatnonzero((seg_weights > 0.0) & tracked)
                if add_groups.size:
                    store.add_many(uniq[add_groups], seg_weights[add_groups])
                    val[add_groups] += seg_weights[add_groups]
                new_groups = sub[new_positions]
                if new_groups.size:
                    store.insert_many(uniq[new_groups], seg_weights[new_groups])
                    tracked[new_groups] = True
                    val[new_groups] = seg_weights[new_groups]
                stats.updates += seg_len
                stats.inserts += int(new_groups.size)
                stats.hits += seg_len - int(new_groups.size)
            if trigger < 0:
                break
            # Table full: DecrementCounters(), scalar code path verbatim.
            trigger_weight = float(weights[trigger])
            trigger_group = int(inverse[trigger])
            c_star = self._policy.decrement_value(store, self._rng)
            scanned = len(store)
            freed = store.decrement_and_purge(c_star)
            self._offset += c_star
            stats.updates += 1
            stats.decrements += 1
            stats.counters_scanned += scanned
            stats.counters_freed += freed
            np.subtract(val, c_star, out=val, where=tracked)
            tracked &= val > 0.0
            if trigger_weight > c_star:
                store.insert(int(uniq[trigger_group]), trigger_weight - c_star)
                stats.inserts += 1
                tracked[trigger_group] = True
                val[trigger_group] = trigger_weight - c_star
            p = trigger + 1

    def _ingest(self, item: ItemId, weight: float) -> None:
        """Counter logic shared by :meth:`update` and :meth:`merge`.

        Does *not* touch ``_stream_weight`` — merging must account for
        the other summary's true stream weight, not its counter sum.
        """
        stats = self.stats
        stats.updates += 1
        store = self._store
        if store.add_to(item, weight):
            stats.hits += 1
            return
        if len(store) < self._k:
            store.insert(item, weight)
            stats.inserts += 1
            return
        # Table full: DecrementCounters() (Algorithm 4, lines 15-21).
        c_star = self._policy.decrement_value(store, self._rng)
        scanned = len(store)
        freed = store.decrement_and_purge(c_star)
        self._offset += c_star
        stats.decrements += 1
        stats.counters_scanned += scanned
        stats.counters_freed += freed
        if weight > c_star:
            store.insert(item, weight - c_star)
            stats.inserts += 1

    # -- point queries ----------------------------------------------------------

    def estimate(self, item: ItemId) -> float:
        """The hybrid point estimate of Section 2.3.1.

        ``c(i) + offset`` when the item holds a counter (SS-like), else 0
        (MG-like).  Always within ``[lower_bound, upper_bound]``.

        Parameters
        ----------
        item : int
            The item identifier to estimate.

        Returns
        -------
        float
            The estimated total weight of ``item`` in the stream.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.estimate(7), sketch.estimate(8)
        (5.0, 0.0)
        """
        count = self._store.get(item)
        if count is None:
            return 0.0
        return count + self._offset

    def lower_bound(self, item: ItemId) -> float:
        """A value guaranteed ``<= f(item)``: the raw MG counter.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.lower_bound(7)
        5.0
        """
        count = self._store.get(item)
        return 0.0 if count is None else count

    def upper_bound(self, item: ItemId) -> float:
        """A value guaranteed ``>= f(item)``: counter plus total offset.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.upper_bound(7)
        5.0
        """
        count = self._store.get(item)
        return self._offset if count is None else count + self._offset

    # -- heavy hitters ------------------------------------------------------------

    def row(self, item: ItemId) -> HeavyHitterRow:
        """The full (estimate, bounds) record for one item.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.row(7).lower_bound
        5.0
        """
        return HeavyHitterRow(
            item, self.estimate(item), self.lower_bound(item), self.upper_bound(item)
        )

    def frequent_items(
        self,
        error_type: ErrorType = ErrorType.NO_FALSE_POSITIVES,
        threshold: Optional[float] = None,
    ) -> list[HeavyHitterRow]:
        """Items whose frequency (may) exceed ``threshold``, sorted by estimate.

        With ``NO_FALSE_POSITIVES`` an item is reported only if its lower
        bound clears the threshold — everything reported truly qualifies.
        With ``NO_FALSE_NEGATIVES`` the upper bound is compared — every
        true heavy hitter is reported, possibly with a few borderline
        extras.  The default threshold is :attr:`maximum_error`, the
        tightest level at which the reports are meaningful.

        Parameters
        ----------
        error_type : ErrorType, optional
            Which side of the uncertainty interval gates inclusion.
        threshold : float, optional
            Minimum (estimated) frequency; defaults to
            :attr:`maximum_error`.

        Returns
        -------
        list of HeavyHitterRow
            Qualifying items, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.frequent_items(threshold=5.0)]
        [1]
        """
        if threshold is None:
            threshold = self._offset
        if threshold < 0:
            raise InvalidParameterError(f"threshold must be >= 0, got {threshold}")
        rows = []
        offset = self._offset
        for item, count in self._store.items():
            lower = count
            upper = count + offset
            qualifies = (
                lower >= threshold
                if error_type is ErrorType.NO_FALSE_POSITIVES
                else upper >= threshold
            )
            if qualifies:
                rows.append(HeavyHitterRow(item, upper, lower, upper))
        rows.sort(key=lambda r: (-r.estimate, r.item))
        return rows

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """(φ)-heavy hitters: items with ``f_i >= phi * N`` (Section 1.2).

        The default error direction guarantees every true φ-heavy hitter
        is returned, with false positives limited to items of frequency
        at least ``phi*N - maximum_error``.

        Parameters
        ----------
        phi : float
            The heavy-hitter fraction, in ``(0, 1]``.
        error_type : ErrorType, optional
            As in :meth:`frequent_items`; defaults to no false
            negatives.

        Returns
        -------
        list of HeavyHitterRow
            The reported heavy hitters, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.heavy_hitters(phi=0.5)]
        [1]
        """
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        return self.frequent_items(error_type, phi * self._stream_weight)

    def to_rows(self) -> list[HeavyHitterRow]:
        """All tracked items as rows, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.to_rows()]
        [1, 2]
        """
        offset = self._offset
        rows = [
            HeavyHitterRow(item, count + offset, count, count + offset)
            for item, count in self._store.items()
        ]
        rows.sort(key=lambda r: (-r.estimate, r.item))
        return rows

    def __iter__(self) -> Iterator[HeavyHitterRow]:
        return iter(self.to_rows())

    # -- merging -------------------------------------------------------------------

    def merge(self, other: "FrequentItemsSketch") -> "FrequentItemsSketch":
        """Algorithm 5: absorb ``other`` into this sketch; returns self.

        The other summary's counters are replayed through the update path
        in *random order* — the Section 3.2 note: iterating a hash table
        front-to-back into another table (possibly sharing the hash
        function) would overpopulate the front of this sketch's table.
        Offsets add (each summary's accumulated error carries over) and
        stream weights add.  ``other`` is not modified.

        Runs in O(k) time, O(min(k, k'))-amortized when many small
        summaries are merged in, and allocates nothing beyond the
        iteration order.

        Parameters
        ----------
        other : FrequentItemsSketch
            The summary to absorb; it is left unmodified.

        Returns
        -------
        FrequentItemsSketch
            ``self``, to allow fold-style chaining.

        Examples
        --------
        >>> a, b = FrequentItemsSketch(64), FrequentItemsSketch(64)
        >>> a.update(1, 4.0); b.update(1, 6.0)
        >>> a.merge(b).estimate(1)
        10.0
        """
        if other is self:
            raise IncompatibleSketchError("cannot merge a sketch into itself")
        entries = list(other._store.items())
        if len(entries) > 1:
            # Deterministic random order, seeded from this sketch's PRNG
            # (numpy's permutation is C-coded; a pure-Python shuffle would
            # dominate the merge cost at large k).
            order = np.random.Generator(
                np.random.PCG64(self._rng.next_u64())
            ).permutation(len(entries))
            entries = [entries[index] for index in order]
        if isinstance(self._store, DictCounterStore):
            self._merge_entries_dict_fast(entries)
        elif isinstance(self._store, ColumnarCounterStore) and entries:
            # The batch ingest is defined to equal the per-entry loop,
            # and on the columnar store it replaces per-entry O(k)
            # insert shifts with bulk sorted merges.
            self._ingest_batch(
                np.array([item for item, _count in entries], dtype=np.uint64),
                np.array([count for _item, count in entries], dtype=np.float64),
            )
        else:
            for item, count in entries:
                self._ingest(item, count)
        self._offset += other._offset
        self._stream_weight += other._stream_weight
        return self

    def _merge_entries_dict_fast(self, entries: list[tuple[ItemId, float]]) -> None:
        """Inlined Algorithm 5 ingest loop for the dict backend.

        Semantically identical to calling :meth:`_ingest` per entry (the
        tests assert so); inlining removes the per-counter Python call
        frames that would otherwise dominate merge cost at large k.
        """
        store = self._store
        counts = store._counts
        k = self._k
        stats = self.stats
        hits = 0
        inserts = 0
        for item, count in entries:
            current = counts.get(item)
            if current is not None:
                counts[item] = current + count
                hits += 1
                continue
            if len(counts) < k:
                counts[item] = count
                inserts += 1
                continue
            c_star = self._policy.decrement_value(store, self._rng)
            stats.decrements += 1
            stats.counters_scanned += len(counts)
            survivors = {
                key: value - c_star
                for key, value in counts.items()
                if value > c_star
            }
            stats.counters_freed += len(counts) - len(survivors)
            counts = store._counts = survivors
            self._offset += c_star
            if count > c_star:
                counts[item] = count - c_star
                inserts += 1
        stats.updates += len(entries)
        stats.hits += hits
        stats.inserts += inserts

    def copy(self) -> "FrequentItemsSketch":
        """An independent deep copy (same configuration and contents).

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(1, 5.0)
        >>> dup = sketch.copy()
        >>> dup.update(1, 5.0)
        >>> sketch.estimate(1), dup.estimate(1)
        (5.0, 10.0)
        """
        dup = FrequentItemsSketch(
            self._k, policy=self._policy, backend=self._backend, seed=self._seed
        )
        for item, count in self._store.items():
            dup._store.insert(item, count)
        dup._offset = self._offset
        dup._stream_weight = self._stream_weight
        dup._rng.setstate(self._rng.getstate())
        dup.stats = OpStats(**self.stats.as_dict())
        return dup

    # -- accounting ------------------------------------------------------------------

    def space_bytes(self) -> int:
        """Modeled memory footprint (Section 2.3.3: ~24k bytes).

        Examples
        --------
        >>> FrequentItemsSketch(64).space_bytes() > 0
        True
        """
        return self._store.space_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequentItemsSketch(k={self._k}, policy={self._policy.describe()}, "
            f"backend={self._backend!r}, active={len(self._store)}, "
            f"N={self._stream_weight:g}, offset={self._offset:g})"
        )

    # -- serialization hooks (implemented in repro.core.serialize) --------------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact binary format (see docs/serialization.md).

        Examples
        --------
        >>> FrequentItemsSketch(64).to_bytes()[:4]
        b'RFI1'
        """
        from repro.core.serialize import sketch_to_bytes

        return sketch_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FrequentItemsSketch":
        """Reconstruct a sketch serialized with :meth:`to_bytes`.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(1, 5.0)
        >>> FrequentItemsSketch.from_bytes(sketch.to_bytes()).estimate(1)
        5.0
        """
        from repro.core.serialize import sketch_from_bytes

        return sketch_from_bytes(blob)
