"""The optimized weighted Misra-Gries sketch (Algorithm 4 + Section 2.3).

This is the paper's contribution in one class:

* **Weighted updates in amortized O(1)** — when the table is full, all
  counters are decremented by ``c*``, a sampled quantile of the live
  counter values (Algorithm 4).  With the default median policy at least
  ~half the counters are freed per pass w.h.p., so passes occur at most
  once every Ω(k) updates (Theorem 3) while the error guarantee
  ``0 <= f_i - f̂_i <= N^res(j)/(k/c - j)`` holds w.h.p. (Theorem 4).
* **Hybrid MG/SS estimator (Section 2.3.1)** — an ``offset`` accumulates
  every ``c*``; tracked items report ``c(i) + offset`` (SS-style, often
  exactly correct for genuinely frequent items), untracked items report 0
  (MG-style, exactly correct for absent items).  Deterministic bounds:
  ``c(i) <= f_i <= c(i) + offset``.
* **Compact storage (Section 2.3.3)** — counters live in a linear-probing
  table of parallel arrays with in-place backward-shift deletion
  (``backend="probing"``); a builtin-dict backend is provided because
  CPython's dict is itself a C-coded open-addressing table and is the
  pragmatic fast path in pure Python (ablation benchmark included).
* **O(k) merging (Algorithm 5, Section 3.2)** — the other summary's
  counters are replayed through ``update`` in random order; offsets and
  stream weights add.  Error after any aggregation tree obeys
  ``f_i - f̂_i <= (N - C)/k*`` (Theorem 5).

Since the engine extraction this class is a thin *facade*: all counter
logic lives in :class:`repro.engine.kernel.SketchKernel` (ingest,
decrement, offset accounting, merging) and
:class:`repro.engine.query.QueryEngine` (estimates, bounds, heavy-hitter
rows), shared with the sharded sketch and the windowed / sampled /
decayed extensions.  Behavior is bit-identical to the pre-extraction
implementation — same counters, offsets, PRNG draws, serialized bytes.

>>> sketch = FrequentItemsSketch(64, seed=1)
>>> for item, weight in [(7, 100.0), (8, 50.0), (7, 25.0)]:
...     sketch.update(item, weight)
>>> sketch.estimate(7)
125.0
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.policies import DecrementPolicy
from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.metrics.instrumentation import OpStats
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.model import as_batch, as_updates
from repro.table.base import CounterStore
from repro.types import ItemId, Weight


class FrequentItemsSketch:
    """Approximate frequencies and heavy hitters over weighted streams.

    Parameters
    ----------
    max_counters:
        The paper's ``k`` — the number of counters maintained.  Larger is
        more accurate and (beyond a point) faster per update, at linearly
        more space.  Must be at least 2.
    policy:
        The ``DecrementCounters()`` strategy.  Defaults to the paper's
        recommended SMED configuration (sample median, ℓ = 1024).
    backend:
        ``"probing"`` (default) for the faithful Section 2.3.3 layout, or
        ``"dict"`` for the CPython-pragmatic fast path.
    seed:
        Controls counter sampling, quickselect pivots, the merge
        iteration order, and the table's hash — two sketches built with
        the same seed and inputs are identical.
    growth:
        ``"fixed"`` (default) allocates the whole table up front;
        ``"adaptive"`` starts it small and doubles up to ``k`` on
        overflow (the paper's doubling hash map) — decrement passes
        begin only once ``k`` counters are live, so query results are
        bit-identical to the fixed mode throughout.
    """

    __slots__ = ("_kernel", "_query")

    def __init__(
        self,
        max_counters: int,
        policy: Optional[DecrementPolicy] = None,
        backend: str = "probing",
        seed: int = 0,
        growth: str = "fixed",
    ) -> None:
        self._kernel = SketchKernel(
            max_counters, policy=policy, backend=backend, seed=seed, growth=growth
        )
        self._query = QueryEngine(self._kernel)

    @classmethod
    def _from_kernel(cls, kernel: SketchKernel) -> "FrequentItemsSketch":
        """Wrap an existing kernel without copying it (engine consumers)."""
        sketch = cls.__new__(cls)
        sketch._kernel = kernel
        sketch._query = QueryEngine(kernel)
        return sketch

    # -- engine access ---------------------------------------------------------

    @property
    def kernel(self) -> SketchKernel:
        """The underlying :class:`~repro.engine.kernel.SketchKernel`."""
        return self._kernel

    @property
    def query_engine(self) -> QueryEngine:
        """The underlying :class:`~repro.engine.query.QueryEngine`."""
        return self._query

    # -- kernel state, exposed under the historical private names --------------
    # (serialization, the sharded sketch, benchmarks, and tests all peek
    # at these; they are now views onto the kernel.)

    @property
    def _store(self) -> CounterStore:
        return self._kernel.store

    @property
    def _rng(self) -> Xoroshiro128PlusPlus:
        return self._kernel.rng

    @property
    def _offset(self) -> float:
        return self._kernel.offset

    @_offset.setter
    def _offset(self, value: float) -> None:
        self._kernel.offset = value

    @property
    def _stream_weight(self) -> float:
        return self._kernel.stream_weight

    @_stream_weight.setter
    def _stream_weight(self, value: float) -> None:
        self._kernel.stream_weight = value

    @property
    def stats(self) -> OpStats:
        """Operation counters for the events that dominate update cost."""
        return self._kernel.stats

    @stats.setter
    def stats(self, value: OpStats) -> None:
        self._kernel.stats = value

    # -- configuration introspection ------------------------------------------

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``.

        Examples
        --------
        >>> FrequentItemsSketch(64).max_counters
        64
        """
        return self._kernel.k

    @property
    def policy(self) -> DecrementPolicy:
        """The active decrement policy (SMED when none was given).

        Examples
        --------
        >>> FrequentItemsSketch(64).policy.describe()
        'SMED(ell=1024)'
        """
        return self._kernel.policy

    @property
    def backend(self) -> str:
        """The counter-store backend name.

        Examples
        --------
        >>> FrequentItemsSketch(64).backend
        'probing'
        """
        return self._kernel.backend

    @property
    def seed(self) -> int:
        """The seed this sketch was constructed with.

        Examples
        --------
        >>> FrequentItemsSketch(64, seed=9).seed
        9
        """
        return self._kernel.seed

    @property
    def growth(self) -> str:
        """The table-growth mode (``"fixed"`` or ``"adaptive"``).

        Examples
        --------
        >>> FrequentItemsSketch(64, growth="adaptive").growth
        'adaptive'
        """
        return self._kernel.growth

    # -- state introspection ---------------------------------------------------

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([1, 2, 1])
        >>> sketch.num_active
        2
        """
        return len(self._kernel.store)

    @property
    def stream_weight(self) -> float:
        """Total weight ``N`` processed (including merged-in sketches).

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(5, 2.5)
        >>> sketch.stream_weight
        2.5
        """
        return self._kernel.stream_weight

    @property
    def maximum_error(self) -> float:
        """The accumulated offset: a bound on ``f_i - lower_bound(i)``.

        This is the sum of all decrement values ``c*`` so far; every
        estimate's uncertainty interval has exactly this width.

        Examples
        --------
        >>> FrequentItemsSketch(64).maximum_error
        0.0
        """
        return self._kernel.offset

    def is_empty(self) -> bool:
        """True if the sketch has processed no weight.

        Examples
        --------
        >>> FrequentItemsSketch(64).is_empty()
        True
        """
        return self._kernel.is_empty()

    def __len__(self) -> int:
        return len(self._kernel.store)

    def __contains__(self, item: ItemId) -> bool:
        return self._kernel.store.get(item) is not None

    # -- updates ---------------------------------------------------------------

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted stream update ``(item, weight)``.

        Amortized O(1): the only non-constant step is a decrement pass,
        which frees a constant fraction of the ``k`` counters and so can
        recur at most once every Ω(k) updates (Theorem 3).

        Parameters
        ----------
        item : int
            The 64-bit item identifier (helpers in :mod:`repro.hashing`
            fold strings/bytes onto that space).
        weight : float, optional
            Positive update weight ``delta_j`` (1.0 when omitted).

        Raises
        ------
        InvalidUpdateError
            If ``weight`` is not strictly positive.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7)
        >>> sketch.update(7, 2.0)
        >>> sketch.estimate(7)
        3.0
        """
        self._kernel.update(item, weight)

    def update_all(self, updates: Iterable) -> None:
        """Consume an iterable of updates (items, pairs, or StreamUpdates).

        Bare item ids are treated as unit-weight updates, exactly as the
        stream model of Section 1.2 allows.

        Parameters
        ----------
        updates : iterable
            Any mix of bare item ids, ``(item, weight)`` pairs, and
            :class:`~repro.types.StreamUpdate` instances.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([7, (8, 3.0), 7])
        >>> sketch.estimate(7), sketch.estimate(8)
        (2.0, 3.0)
        """
        kernel_update = self._kernel.update
        for item, weight in as_updates(updates):
            kernel_update(item, weight)

    def update_batch(self, items, weights=None) -> None:
        """Process a batch of weighted updates given as NumPy arrays.

        ``items`` is a 1-D array (or sequence) of 64-bit item ids and
        ``weights`` a parallel array of positive weights (all 1.0 when
        omitted).  The result is *identical* to calling :meth:`update`
        once per element in order — same counters, same offset, same
        serialized bytes — but the work is done per *distinct* key and
        per decrement pass instead of per update:

        * one grouping pass (``np.unique`` + ``np.bincount``) collapses
          duplicate keys;
        * between decrement passes, tracked keys receive one bulk
          ``add_many`` and new keys one bulk ``insert_many``;
        * decrement passes run exactly where the scalar loop would run
          them (Theorem 3's amortization: at most once every Ω(k)
          updates), so a batch triggers O(batch/k + 1) passes.

        Equivalence holds bit-for-bit when weights are exactly
        representable integers (the paper's workloads — unit weights,
        integer weights, packet bits — all are); for arbitrary reals the
        grouped additions may differ from the sequential loop by
        floating-point rounding only.

        Parameters
        ----------
        items : numpy.ndarray or sequence
            1-D array of 64-bit item identifiers.
        weights : numpy.ndarray, optional
            Parallel array of positive weights (all 1.0 when omitted).

        Examples
        --------
        >>> import numpy as np
        >>> sketch = FrequentItemsSketch(64, backend="columnar")
        >>> sketch.update_batch(np.array([7, 8, 7], dtype=np.uint64),
        ...                     np.array([1.0, 3.0, 1.0]))
        >>> sketch.estimate(7), sketch.stream_weight
        (2.0, 5.0)
        """
        items, weights = as_batch(items, weights)
        self._kernel.update_batch_validated(items, weights)

    def _ingest(self, item: ItemId, weight: float) -> None:
        """Kernel scalar ingest (stream weight not touched); see the engine."""
        self._kernel.ingest(item, weight)

    # -- point queries ----------------------------------------------------------

    def estimate(self, item: ItemId) -> float:
        """The hybrid point estimate of Section 2.3.1.

        ``c(i) + offset`` when the item holds a counter (SS-like), else 0
        (MG-like).  Always within ``[lower_bound, upper_bound]``.

        Parameters
        ----------
        item : int
            The item identifier to estimate.

        Returns
        -------
        float
            The estimated total weight of ``item`` in the stream.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.estimate(7), sketch.estimate(8)
        (5.0, 0.0)
        """
        return self._query.estimate(item)

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over an array of item identifiers.

        One bulk store probe instead of one Python call per key; repeated
        and absent keys are both fine.  Element-for-element equal to the
        scalar method: ``estimate_batch(items)[i] == estimate(items[i])``.

        Parameters
        ----------
        items : numpy.ndarray or sequence
            1-D array of item identifiers to estimate.

        Returns
        -------
        numpy.ndarray
            Float64 estimates, parallel to ``items``.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.estimate_batch([7, 8, 7])
        array([5., 0., 5.])
        """
        return self._query.estimate_batch(items)

    def lower_bound(self, item: ItemId) -> float:
        """A value guaranteed ``<= f(item)``: the raw MG counter.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.lower_bound(7)
        5.0
        """
        return self._query.lower_bound(item)

    def upper_bound(self, item: ItemId) -> float:
        """A value guaranteed ``>= f(item)``: counter plus total offset.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.upper_bound(7)
        5.0
        """
        return self._query.upper_bound(item)

    # -- heavy hitters ------------------------------------------------------------

    def row(self, item: ItemId) -> HeavyHitterRow:
        """The full (estimate, bounds) record for one item.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(7, 5.0)
        >>> sketch.row(7).lower_bound
        5.0
        """
        return self._query.row(item)

    def frequent_items(
        self,
        error_type: ErrorType = ErrorType.NO_FALSE_POSITIVES,
        threshold: Optional[float] = None,
    ) -> list[HeavyHitterRow]:
        """Items whose frequency (may) exceed ``threshold``, sorted by estimate.

        With ``NO_FALSE_POSITIVES`` an item is reported only if its lower
        bound clears the threshold — everything reported truly qualifies.
        With ``NO_FALSE_NEGATIVES`` the upper bound is compared — every
        true heavy hitter is reported, possibly with a few borderline
        extras.  The default threshold is :attr:`maximum_error`, the
        tightest level at which the reports are meaningful.

        Parameters
        ----------
        error_type : ErrorType, optional
            Which side of the uncertainty interval gates inclusion.
        threshold : float, optional
            Minimum (estimated) frequency; defaults to
            :attr:`maximum_error`.

        Returns
        -------
        list of HeavyHitterRow
            Qualifying items, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.frequent_items(threshold=5.0)]
        [1]
        """
        return self._query.frequent_items(error_type, threshold)

    def heavy_hitters(
        self,
        phi: float,
        error_type: ErrorType = ErrorType.NO_FALSE_NEGATIVES,
    ) -> list[HeavyHitterRow]:
        """(φ)-heavy hitters: items with ``f_i >= phi * N`` (Section 1.2).

        The default error direction guarantees every true φ-heavy hitter
        is returned, with false positives limited to items of frequency
        at least ``phi*N - maximum_error``.

        Parameters
        ----------
        phi : float
            The heavy-hitter fraction, in ``(0, 1]``.
        error_type : ErrorType, optional
            As in :meth:`frequent_items`; defaults to no false
            negatives.

        Returns
        -------
        list of HeavyHitterRow
            The reported heavy hitters, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.heavy_hitters(phi=0.5)]
        [1]
        """
        return self._query.heavy_hitters(phi, error_type)

    def to_rows(self) -> list[HeavyHitterRow]:
        """All tracked items as rows, sorted by estimate descending.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update_all([(1, 9.0), (2, 1.0)])
        >>> [row.item for row in sketch.to_rows()]
        [1, 2]
        """
        return self._query.to_rows()

    def __iter__(self) -> Iterator[HeavyHitterRow]:
        return iter(self.to_rows())

    # -- merging -------------------------------------------------------------------

    def merge(self, other: "FrequentItemsSketch") -> "FrequentItemsSketch":
        """Algorithm 5: absorb ``other`` into this sketch; returns self.

        The other summary's counters are replayed through the update path
        in *random order* — the Section 3.2 note: iterating a hash table
        front-to-back into another table (possibly sharing the hash
        function) would overpopulate the front of this sketch's table.
        Offsets add (each summary's accumulated error carries over) and
        stream weights add.  ``other`` is not modified.

        Runs in O(k) time, O(min(k, k'))-amortized when many small
        summaries are merged in, and allocates nothing beyond the
        iteration order.

        Parameters
        ----------
        other : FrequentItemsSketch
            The summary to absorb; it is left unmodified.

        Returns
        -------
        FrequentItemsSketch
            ``self``, to allow fold-style chaining.

        Examples
        --------
        >>> a, b = FrequentItemsSketch(64), FrequentItemsSketch(64)
        >>> a.update(1, 4.0); b.update(1, 6.0)
        >>> a.merge(b).estimate(1)
        10.0
        """
        self._kernel.absorb(other._kernel)
        return self

    def copy(self) -> "FrequentItemsSketch":
        """An independent deep copy (same configuration and contents).

        Reconstruction goes through the kernel's single
        :meth:`~repro.engine.kernel.SketchKernel.restore` path, shared
        with :meth:`from_bytes`.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(1, 5.0)
        >>> dup = sketch.copy()
        >>> dup.update(1, 5.0)
        >>> sketch.estimate(1), dup.estimate(1)
        (5.0, 10.0)
        """
        return FrequentItemsSketch._from_kernel(self._kernel.copy())

    # -- accounting ------------------------------------------------------------------

    def space_bytes(self) -> int:
        """Modeled memory footprint (Section 2.3.3: ~24k bytes).

        Examples
        --------
        >>> FrequentItemsSketch(64).space_bytes() > 0
        True
        """
        return self._kernel.store.space_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kernel = self._kernel
        return (
            f"FrequentItemsSketch(k={kernel.k}, policy={kernel.policy.describe()}, "
            f"backend={kernel.backend!r}, active={len(kernel.store)}, "
            f"N={kernel.stream_weight:g}, offset={kernel.offset:g})"
        )

    # -- serialization hooks (implemented in repro.core.serialize) --------------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact binary format (see docs/serialization.md).

        Examples
        --------
        >>> FrequentItemsSketch(64).to_bytes()[:4]
        b'RFI1'
        """
        from repro.core.serialize import sketch_to_bytes

        return sketch_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FrequentItemsSketch":
        """Reconstruct a sketch serialized with :meth:`to_bytes`.

        Examples
        --------
        >>> sketch = FrequentItemsSketch(64)
        >>> sketch.update(1, 5.0)
        >>> FrequentItemsSketch.from_bytes(sketch.to_bytes()).estimate(1)
        5.0
        """
        from repro.core.serialize import sketch_from_bytes

        return sketch_from_bytes(blob)
