"""Robin Hood probing — the road not taken in Section 2.3.3.

The paper notes its authors "experimented with a wide variety of hash
table implementations" before settling on plain linear probing.  Robin
Hood hashing is the canonical contender: insertions displace residents
that are closer to their home slot ("steal from the rich"), equalizing
probe distances, and lookups can terminate early once the resident's
distance drops below the probe's.  The variance reduction shines at very
high load factors; at the paper's 3/4 load plain linear probing's simpler
inner loop wins — which the backend ablation lets you measure rather than
take on faith.

Shares all bulk operations (adjust, purge, sampling, accounting, the
vectorized probe walks, and the adaptive-growth machinery) with
:class:`~repro.table.probing.LinearProbingTable`; only the probe
discipline differs.  The batched lookups keep the Robin Hood early exit:
a probing round retires a key as absent the moment the gathered
resident is richer than the probe is poor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.native import register_table
from repro.table.probing import LinearProbingTable
from repro.types import ItemId


class RobinHoodTable(LinearProbingTable):
    """Open addressing with Robin Hood displacement and early-exit lookup."""

    __slots__ = ()

    # -- lookup with the Robin Hood early exit --------------------------------

    def get(self, key: ItemId) -> Optional[float]:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0 or state - 1 < distance:
                # Empty, or the resident is richer than we are poor: under
                # the Robin Hood invariant the key cannot be further on.
                self.probe_count += probes
                return None
            if keys[slot] == key:
                self.probe_count += probes
                return float(self._values[slot])
            slot = (slot + 1) & mask
            distance += 1

    def add_to(self, key: ItemId, delta: float) -> bool:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0 or state - 1 < distance:
                self.probe_count += probes
                return False
            if keys[slot] == key:
                self._values[slot] += delta
                self.probe_count += probes
                return True
            slot = (slot + 1) & mask
            distance += 1

    # -- batch lookup (vectorized, early exit preserved) ----------------------

    def _locate_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = len(keys)
        found = np.zeros(n, dtype=bool)
        slots = self._home_slots_array(keys)
        if n == 0:
            return slots, found
        states = self._states
        table_keys = self._keys
        mask = self._mask
        active = np.arange(n)
        probes = 0
        distance = 0
        while active.size:
            probes += active.size
            s = slots[active]
            st = states[s]
            # Absent the moment the slot is empty or its resident is
            # closer to home than the probe is (the early exit).
            alive = (st != 0) & (st - 1 >= distance)
            hit = alive & (table_keys[s] == keys[active])
            if hit.any():
                found[active[hit]] = True
            nxt = active[alive & ~hit]
            if nxt.size:
                slots[nxt] = (slots[nxt] + 1) & mask
            active = nxt
            distance += 1
        self.probe_count += probes
        return slots, found

    # -- insertion with displacement -------------------------------------------

    def insert(self, key: ItemId, value: float) -> None:
        self._ensure_slot()
        if self.get(key) is not None:
            raise InvalidParameterError(f"key {key} is already assigned a counter")
        self._place(key, value)
        self._size += 1
        if self._insertion_log is not None:
            self._insertion_log.append(key)

    def put(self, key: ItemId, value: float) -> None:
        """Set ``key`` to ``value``, inserting if absent."""
        if self.add_to(key, 0.0):
            # Found: overwrite in place.
            states = self._states
            keys = self._keys
            mask = self._mask
            slot = self._home_slot(key)
            while keys[slot] != key or states[slot] == 0:
                slot = (slot + 1) & mask
            self._values[slot] = value
            return
        self._ensure_slot()
        self._place(key, value)
        self._size += 1
        if self._insertion_log is not None:
            self._insertion_log.append(key)

    def _rehash_place(self, key: ItemId, value: float) -> None:
        self._place(key, value)
        self._size += 1
        if self._insertion_log is not None:
            self._insertion_log.append(key)

    def _insert_block(self, keys: np.ndarray, values: np.ndarray) -> None:
        n = len(keys)
        states = self._states
        homes = self._home_slots_array(keys)
        if not states[homes].any():
            if n == 1:
                distinct = True
            else:
                in_order = np.sort(homes)
                distinct = not (in_order[1:] == in_order[:-1]).any()
            if distinct:
                # Every key lands in its empty home slot: no displacement
                # can occur, so one scatter equals the scalar sequence.
                self._keys[homes] = keys
                self._values[homes] = values
                states[homes] = 1
                self._size += n
                self.probe_count += n
                if self._insertion_log is not None:
                    self._insertion_log.extend(keys.tolist())
                return
        # Slow path: the scalar displacement sequence, simulated on plain
        # Python lists (NumPy scalar indexing would dominate the loop),
        # then scattered back only to the slots the walk touched.  A
        # duplicate is always reached before any steal could hide it (the
        # Robin Hood invariant: a present key sits before the first
        # richer resident on its probe path), so the walk doubles as the
        # scalar insert's duplicate check.
        states_list = states.tolist()
        keys_list = self._keys.tolist()
        values_list = self._values.tolist()
        mask = self._mask
        probes_total = 0
        dirty: list[int] = []
        mark = dirty.append
        for key, value, home in zip(keys.tolist(), values.tolist(), homes.tolist()):
            slot = home
            distance = 0
            probes = 0
            while True:
                state = states_list[slot]
                probes += 1
                if state == 0:
                    keys_list[slot] = key
                    values_list[slot] = value
                    states_list[slot] = distance + 1
                    mark(slot)
                    break
                if keys_list[slot] == key:
                    raise InvalidParameterError(
                        f"key {key} is already assigned a counter"
                    )
                resident_distance = state - 1
                if resident_distance < distance:
                    key, keys_list[slot] = keys_list[slot], key
                    value, values_list[slot] = values_list[slot], value
                    states_list[slot] = distance + 1
                    distance = resident_distance
                    mark(slot)
                slot = (slot + 1) & mask
                distance += 1
            probes_total += probes
        touched = np.array(dirty, dtype=np.int64)
        # Duplicate indices all carry the same post-simulation value, so
        # scatter order cannot matter.
        states[touched] = [states_list[s] for s in dirty]
        self._keys[touched] = [keys_list[s] for s in dirty]
        self._values[touched] = [values_list[s] for s in dirty]
        self._size += n
        self.probe_count += probes_total
        if self._insertion_log is not None:
            self._insertion_log.extend(keys.tolist())

    def _place(self, key: ItemId, value: float, home: Optional[int] = None) -> None:
        """Robin Hood displacement walk (key must be absent)."""
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        slot = self._home_slot(key) if home is None else home
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0:
                keys[slot] = key
                values[slot] = value
                states[slot] = distance + 1
                self.probe_count += probes
                return
            resident_distance = state - 1
            if resident_distance < distance:
                # Steal the slot; the evicted resident continues probing.
                key, keys[slot] = keys[slot], key
                value, values[slot] = values[slot], value
                states[slot] = distance + 1
                distance = resident_distance
            slot = (slot + 1) & mask
            distance += 1

    def _rebuild_place(
        self, keys: np.ndarray, values: np.ndarray, homes: np.ndarray
    ) -> None:
        """Re-place purge survivors with Robin Hood displacement (no probe
        tax, matching the in-place backward shift it replaces).

        The table is empty here: the displacement walk runs on fresh
        Python lists and the result lands in one bulk assignment per
        column (which also wipes any stale cells).
        """
        length = self._mask + 1
        mask = self._mask
        states_list = [0] * length
        keys_list = [0] * length
        values_list = [0.0] * length
        dirty: list[int] = []
        mark = dirty.append
        for key, value, home in zip(keys.tolist(), values.tolist(), homes.tolist()):
            slot = home
            distance = 0
            while True:
                state = states_list[slot]
                if state == 0:
                    keys_list[slot] = key
                    values_list[slot] = value
                    states_list[slot] = distance + 1
                    mark(slot)
                    break
                resident_distance = state - 1
                if resident_distance < distance:
                    key, keys_list[slot] = keys_list[slot], key
                    value, values_list[slot] = values_list[slot], value
                    states_list[slot] = distance + 1
                    distance = resident_distance
                    mark(slot)
                slot = (slot + 1) & mask
                distance += 1
        touched = np.array(dirty, dtype=np.int64)
        self._states[touched] = [states_list[s] for s in dirty]
        self._keys[touched] = [keys_list[s] for s in dirty]
        self._values[touched] = [values_list[s] for s in dirty]
        self._size = len(keys)

    # -- deletion: canonical Robin Hood backward shift ---------------------------

    def _remove_at(self, slot: int) -> None:
        """Slide every displaced successor back one slot.

        Simpler than the plain-LP path-membership shift and preserves the
        Robin Hood invariant (distances along a run stay non-decreasing),
        which the early-exit lookups depend on.
        """
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        states[slot] = 0
        self._size -= 1
        previous = slot
        current = (slot + 1) & mask
        while states[current] > 1:  # displaced at least one slot
            keys[previous] = keys[current]
            values[previous] = values[current]
            states[previous] = states[current] - 1
            states[current] = 0
            previous = current
            current = (current + 1) & mask

    def check_invariant(self) -> bool:
        """Robin Hood order: along any run, probe distance grows by <= 1.

        Equivalently every element's recorded home matches a reachable
        probe path with no element "richer" than a displaced predecessor.
        Used by tests.
        """
        states = self._states
        mask = self._mask
        for slot in range(len(states)):
            state = states[slot]
            if state == 0:
                continue
            # All slots between home and here must be occupied.
            distance = state - 1
            for back in range(1, distance + 1):
                if states[(slot - back) & mask] == 0:
                    return False
            # Predecessor in the run is at most one poorer transition.
            prev_state = states[(slot - 1) & mask]
            if prev_state != 0 and state > prev_state + 1:
                return False
        return True


# The compiled kernels implement the Robin Hood walks too; the inherited
# batch entry points dispatch on this registration (exact class only).
register_table(RobinHoodTable, robinhood=1)
