"""Robin Hood probing — the road not taken in Section 2.3.3.

The paper notes its authors "experimented with a wide variety of hash
table implementations" before settling on plain linear probing.  Robin
Hood hashing is the canonical contender: insertions displace residents
that are closer to their home slot ("steal from the rich"), equalizing
probe distances, and lookups can terminate early once the resident's
distance drops below the probe's.  The variance reduction shines at very
high load factors; at the paper's 3/4 load plain linear probing's simpler
inner loop wins — which the backend ablation lets you measure rather than
take on faith.

Shares all bulk operations (adjust, purge, sampling, accounting) with
:class:`~repro.table.probing.LinearProbingTable`; only the probe
discipline differs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidParameterError, TableFullError
from repro.table.probing import LinearProbingTable
from repro.types import ItemId


class RobinHoodTable(LinearProbingTable):
    """Open addressing with Robin Hood displacement and early-exit lookup."""

    __slots__ = ()

    # -- lookup with the Robin Hood early exit --------------------------------

    def get(self, key: ItemId) -> Optional[float]:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0 or state - 1 < distance:
                # Empty, or the resident is richer than we are poor: under
                # the Robin Hood invariant the key cannot be further on.
                self.probe_count += probes
                return None
            if keys[slot] == key:
                self.probe_count += probes
                return self._values[slot]
            slot = (slot + 1) & mask
            distance += 1

    def add_to(self, key: ItemId, delta: float) -> bool:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0 or state - 1 < distance:
                self.probe_count += probes
                return False
            if keys[slot] == key:
                self._values[slot] += delta
                self.probe_count += probes
                return True
            slot = (slot + 1) & mask
            distance += 1

    # -- insertion with displacement -------------------------------------------

    def insert(self, key: ItemId, value: float) -> None:
        if self._size >= self._capacity:
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        if self.get(key) is not None:
            raise InvalidParameterError(f"key {key} is already assigned a counter")
        self._place(key, value)
        self._size += 1

    def put(self, key: ItemId, value: float) -> None:
        """Set ``key`` to ``value``, inserting if absent."""
        if self.add_to(key, 0.0):
            # Found: overwrite in place.
            states = self._states
            keys = self._keys
            mask = self._mask
            slot = self._home_slot(key)
            while keys[slot] != key or states[slot] == 0:
                slot = (slot + 1) & mask
            self._values[slot] = value
            return
        if self._size >= self._capacity:
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        self._place(key, value)
        self._size += 1

    def _place(self, key: ItemId, value: float) -> None:
        """Robin Hood displacement walk (key must be absent)."""
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        slot = self._home_slot(key)
        distance = 0
        probes = 0
        while True:
            state = states[slot]
            probes += 1
            if state == 0:
                keys[slot] = key
                values[slot] = value
                states[slot] = distance + 1
                self.probe_count += probes
                return
            resident_distance = state - 1
            if resident_distance < distance:
                # Steal the slot; the evicted resident continues probing.
                key, keys[slot] = keys[slot], key
                value, values[slot] = values[slot], value
                states[slot] = distance + 1
                distance = resident_distance
            slot = (slot + 1) & mask
            distance += 1

    # -- deletion: canonical Robin Hood backward shift ---------------------------

    def _remove_at(self, slot: int) -> None:
        """Slide every displaced successor back one slot.

        Simpler than the plain-LP path-membership shift and preserves the
        Robin Hood invariant (distances along a run stay non-decreasing),
        which the early-exit lookups depend on.
        """
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        states[slot] = 0
        self._size -= 1
        previous = slot
        current = (slot + 1) & mask
        while states[current] > 1:  # displaced at least one slot
            keys[previous] = keys[current]
            values[previous] = values[current]
            states[previous] = states[current] - 1
            states[current] = 0
            previous = current
            current = (current + 1) & mask

    def check_invariant(self) -> bool:
        """Robin Hood order: along any run, probe distance grows by <= 1.

        Equivalently every element's recorded home matches a reachable
        probe path with no element "richer" than a displaced predecessor.
        Used by tests.
        """
        states = self._states
        mask = self._mask
        for slot in range(len(states)):
            state = states[slot]
            if state == 0:
                continue
            # All slots between home and here must be occupied.
            distance = state - 1
            for back in range(1, distance + 1):
                if states[(slot - back) & mask] == 0:
                    return False
            # Predecessor in the run is at most one poorer transition.
            prev_state = states[(slot - 1) & mask]
            if prev_state != 0 and state > prev_state + 1:
                return False
        return True
