"""The interface every counter store implements.

A *counter store* is a bounded map from 64-bit item identifiers to
positive real counts supporting exactly the operations the paper's
algorithms need: point lookup/increment, insert, a bulk
"decrement everything and drop the non-positive" pass, iteration, and
random sampling of live counter values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.prng import Xoroshiro128PlusPlus
from repro.types import ItemId


class CounterStore(ABC):
    """Abstract bounded item -> count map used by all counter algorithms."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Maximum number of counters (the paper's ``k``)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of counters currently assigned."""

    @abstractmethod
    def get(self, key: ItemId) -> Optional[float]:
        """Return the count for ``key``, or ``None`` if unassigned."""

    @abstractmethod
    def add_to(self, key: ItemId, delta: float) -> bool:
        """Add ``delta`` to ``key``'s counter if assigned; report success.

        Never inserts — returns ``False`` when ``key`` has no counter.
        """

    @abstractmethod
    def insert(self, key: ItemId, value: float) -> None:
        """Assign a fresh counter to ``key`` with initial ``value``.

        ``key`` must not already be assigned; raises
        :class:`repro.errors.TableFullError` at capacity.
        """

    @abstractmethod
    def adjust_all(self, delta: float) -> None:
        """Add ``delta`` (typically negative) to every assigned counter."""

    @abstractmethod
    def purge_nonpositive(self) -> int:
        """Unassign every counter whose value is <= 0; return how many."""

    @abstractmethod
    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over ``(key, count)`` pairs in storage order."""

    @abstractmethod
    def values_list(self) -> list[float]:
        """Return a fresh list of all live counter values."""

    @abstractmethod
    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        """Sample ``count`` live counter values uniformly with replacement."""

    @abstractmethod
    def clear(self) -> None:
        """Unassign every counter."""

    @abstractmethod
    def space_bytes(self) -> int:
        """Modeled memory footprint in bytes (cf. paper Section 2.3.3)."""

    def __contains__(self, key: ItemId) -> bool:
        return self.get(key) is not None

    def decrement_and_purge(self, amount: float) -> int:
        """Subtract ``amount`` from every counter, dropping non-positive ones.

        This is the storage half of ``DecrementCounters()``; returns the
        number of counters freed.
        """
        self.adjust_all(-amount)
        return self.purge_nonpositive()
