"""The interface every counter store implements.

A *counter store* is a bounded map from 64-bit item identifiers to
positive real counts supporting exactly the operations the paper's
algorithms need: point lookup/increment, insert, a bulk
"decrement everything and drop the non-positive" pass, iteration, and
random sampling of live counter values.

Batch operations
----------------
The batched ingestion engine (``FrequentItemsSketch.update_batch``)
talks to stores through three *bulk* operations — :meth:`~CounterStore.
get_many`, :meth:`~CounterStore.add_many`, and :meth:`~CounterStore.
insert_many` — operating on NumPy arrays of keys.  The base class
provides per-key fallbacks so every store works with the batch path out
of the box; array-native stores (:class:`~repro.table.columnar.
ColumnarCounterStore`) override them with vectorized implementations.
The fallbacks are written so that a batch call is *observably identical*
to the equivalent sequence of scalar calls: ``insert_many`` inserts in
the order given (which fixes iteration order for order-sensitive
layouts), and ``add_many`` touches no key absent from the store.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.types import ItemId


class CounterStore(ABC):
    """Abstract bounded item -> count map used by all counter algorithms."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Maximum number of counters (the paper's ``k``)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of counters currently assigned."""

    @abstractmethod
    def get(self, key: ItemId) -> Optional[float]:
        """Return the count for ``key``, or ``None`` if unassigned."""

    @abstractmethod
    def add_to(self, key: ItemId, delta: float) -> bool:
        """Add ``delta`` to ``key``'s counter if assigned; report success.

        Never inserts — returns ``False`` when ``key`` has no counter.
        """

    @abstractmethod
    def insert(self, key: ItemId, value: float) -> None:
        """Assign a fresh counter to ``key`` with initial ``value``.

        ``key`` must not already be assigned; raises
        :class:`repro.errors.TableFullError` at capacity.
        """

    @abstractmethod
    def adjust_all(self, delta: float) -> None:
        """Add ``delta`` (typically negative) to every assigned counter."""

    @abstractmethod
    def purge_nonpositive(self) -> int:
        """Unassign every counter whose value is <= 0; return how many."""

    @abstractmethod
    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over ``(key, count)`` pairs in storage order."""

    @abstractmethod
    def values_list(self) -> list[float]:
        """Return a fresh list of all live counter values."""

    @abstractmethod
    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        """Sample ``count`` live counter values uniformly with replacement."""

    @abstractmethod
    def clear(self) -> None:
        """Unassign every counter."""

    @abstractmethod
    def space_bytes(self) -> int:
        """Modeled memory footprint in bytes (cf. paper Section 2.3.3)."""

    def __contains__(self, key: ItemId) -> bool:
        return self.get(key) is not None

    # -- batch operations (vectorizable; per-key fallbacks provided) ----------

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Look up many keys at once; NaN marks an unassigned key.

        ``keys`` is a 1-D array of (distinct) 64-bit item identifiers.
        Returns a float64 array of the same length.  NaN is a safe
        missing-value marker because live counters are strictly positive
        reals.
        """
        get = self.get
        out = np.empty(len(keys), dtype=np.float64)
        for index, key in enumerate(keys.tolist()):
            value = get(key)
            out[index] = np.nan if value is None else value
        return out

    def add_many(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        """Add ``deltas[i]`` to the counter of ``keys[i]`` for every i.

        Every key must currently be assigned a counter and appear at most
        once in ``keys`` — the batch ingest loop guarantees both by
        construction (it groups duplicates and splits tracked from
        untracked keys before calling in).
        """
        add_to = self.add_to
        for key, delta in zip(keys.tolist(), deltas.tolist()):
            if not add_to(key, delta):
                raise InvalidParameterError(
                    f"add_many: key {key} has no counter assigned"
                )

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Assign fresh counters to many distinct, unassigned keys.

        Insertion happens in the order given — for layouts whose
        iteration order depends on insertion history (builtin dict,
        linear probing) this makes a batch insert byte-for-byte
        equivalent to the scalar insert sequence.  Raises
        :class:`repro.errors.TableFullError` when capacity would be
        exceeded.
        """
        insert = self.insert
        for key, value in zip(keys.tolist(), values.tolist()):
            insert(key, value)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Live ``(keys, counts)`` as parallel arrays, in storage order.

        The bulk export the engine layer uses for kernel copies, the
        sharded merge-on-query view, and counter replay during re-shard
        merges.  The returned arrays are fresh copies — mutating them
        never touches the store.
        """
        entries = list(self.items())
        keys = np.fromiter(
            (key for key, _count in entries), dtype=np.uint64, count=len(entries)
        )
        counts = np.fromiter(
            (count for _key, count in entries), dtype=np.float64, count=len(entries)
        )
        return keys, counts

    def scale_all(self, factor: float) -> None:
        """Multiply every assigned counter by ``factor`` (``>= 0``).

        The renormalization primitive of the time-fading consumers: the
        decayed sketch periodically divides its whole summary by the
        accumulated decay scale.  Values scaled to exactly zero are left
        in place — callers follow up with :meth:`purge_nonpositive`.
        """
        entries = list(self.items())
        self.clear()
        for key, count in entries:
            self.insert(key, count * factor)

    def decrement_and_purge(self, amount: float) -> int:
        """Subtract ``amount`` from every counter, dropping non-positive ones.

        This is the storage half of ``DecrementCounters()``; returns the
        number of counters freed.
        """
        self.adjust_all(-amount)
        return self.purge_nonpositive()
