"""Counter store backed by a plain Python dict.

CPython's dict is a heavily optimized open-addressing table written in C,
so for a pure-Python reproduction it is the pragmatic fast path.  It
implements the same :class:`~repro.table.base.CounterStore` interface as
the faithful :class:`~repro.table.probing.LinearProbingTable`; an ablation
benchmark compares the two.  Space is *modeled* with the same 18-bytes-
per-slot accounting so equal-space comparisons remain meaningful (actual
Python object overhead would swamp any algorithmic difference and says
nothing about the paper's layout).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table.accounting import probing_table_bytes
from repro.table.base import CounterStore
from repro.types import ItemId


class DictCounterStore(CounterStore):
    """Bounded item -> count map on a builtin dict.

    ``initial_capacity`` is accepted for interface parity with the
    array-backed stores: CPython's dict already starts tiny and doubles
    as it fills, so the adaptive-growth mode is its native behavior and
    the parameter changes nothing observable.
    """

    __slots__ = ("_capacity", "_counts")

    def __init__(
        self, capacity: int, initial_capacity: Optional[int] = None
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        if initial_capacity is not None and initial_capacity <= 0:
            raise InvalidParameterError(
                f"initial_capacity must be positive, got {initial_capacity}"
            )
        self._capacity = capacity
        self._counts: dict[ItemId, float] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._counts)

    def get(self, key: ItemId) -> Optional[float]:
        return self._counts.get(key)

    def add_to(self, key: ItemId, delta: float) -> bool:
        current = self._counts.get(key)
        if current is None:
            return False
        self._counts[key] = current + delta
        return True

    def insert(self, key: ItemId, value: float) -> None:
        if key in self._counts:
            raise InvalidParameterError(f"key {key} is already assigned a counter")
        if len(self._counts) >= self._capacity:
            raise TableFullError(
                f"store holds {len(self._counts)} counters, capacity {self._capacity}"
            )
        self._counts[key] = value

    # -- batch operations ------------------------------------------------------
    # Tight-loop overrides of the base-class fallbacks: one dict probe per
    # key instead of one bound-method call per key.  Observationally
    # identical to the scalar sequences (same insertion order, so the
    # dict's iteration order — and serialized bytes — match exactly).

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        # One C-level dict probe per key, filled straight into the output
        # array — no intermediate Python list.  This is the whole batch
        # query path for the dict backend (``QueryEngine.estimate_batch``
        # routes through here), so it must not degrade to per-item
        # Python-object churn.
        get = self._counts.get
        nan = np.nan
        return np.fromiter(
            (get(key, nan) for key in keys.tolist()),
            dtype=np.float64,
            count=len(keys),
        )

    def add_many(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        counts = self._counts
        for key, delta in zip(keys.tolist(), deltas.tolist()):
            current = counts.get(key)
            if current is None:
                raise InvalidParameterError(
                    f"add_many: key {key} has no counter assigned"
                )
            counts[key] = current + delta

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        counts = self._counts
        if len(counts) + len(keys) > self._capacity:
            raise TableFullError(
                f"store holds {len(counts)} counters, inserting {len(keys)} "
                f"exceeds capacity {self._capacity}"
            )
        for key, value in zip(keys.tolist(), values.tolist()):
            if key in counts:
                raise InvalidParameterError(
                    f"key {key} is already assigned a counter"
                )
            counts[key] = value

    def adjust_all(self, delta: float) -> None:
        counts = self._counts
        for key in counts:
            counts[key] += delta

    def scale_all(self, factor: float) -> None:
        counts = self._counts
        for key in counts:
            counts[key] *= factor

    def purge_nonpositive(self) -> int:
        before = len(self._counts)
        self._counts = {k: v for k, v in self._counts.items() if v > 0.0}
        return before - len(self._counts)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        return iter(self._counts.items())

    def values_list(self) -> list[float]:
        return list(self._counts.values())

    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        if not self._counts:
            raise InvalidParameterError("cannot sample from an empty store")
        pool = list(self._counts.values())
        n = len(pool)
        return [pool[rng.randrange(n)] for _ in range(count)]

    def clear(self) -> None:
        self._counts.clear()

    def space_bytes(self) -> int:
        # Charged with the same model as the probing table so that
        # "equal space" sweeps compare algorithms, not backends.
        return probing_table_bytes(self._capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DictCounterStore(size={len(self._counts)}, capacity={self._capacity})"
