"""Byte-level space accounting for the probing table (paper Section 2.3.3).

The paper's model: keys and values are 8 bytes each, state variables 2
bytes, arrays have length ``L = 4k/3`` rounded up to a power of two, so a
sketch with ``k`` counters occupies ``18 * (4/3) * k = 24k`` bytes plus a
small constant.  These helpers compute the exact figures so space-vs-error
comparisons (Figures 1 and 2, "equal space" panels) can be made in bytes
rather than counter counts.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

#: Bytes per slot: 8 (key) + 8 (value) + 2 (state).
BYTES_PER_SLOT = 18

#: Fixed overhead we charge every table for scalar fields (size, mask, seed...).
HEADER_BYTES = 64


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def table_length(capacity: int, load_factor: float = 0.75) -> int:
    """Array length for a table holding up to ``capacity`` counters.

    With the paper's load factor of 3/4 this is ``next_pow2(ceil(4k/3))``.
    """
    if capacity <= 0:
        raise InvalidParameterError(f"capacity must be positive, got {capacity}")
    if not 0.0 < load_factor < 1.0:
        raise InvalidParameterError(f"load_factor must be in (0,1), got {load_factor}")
    needed = -(-capacity // load_factor) if isinstance(load_factor, int) else capacity / load_factor
    import math

    return next_power_of_two(max(4, math.ceil(needed)))


def probing_table_bytes(capacity: int, load_factor: float = 0.75) -> int:
    """Modeled bytes for a probing table with ``capacity`` counters."""
    return BYTES_PER_SLOT * table_length(capacity, load_factor) + HEADER_BYTES
