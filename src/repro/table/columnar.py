"""NumPy-columnar counter store: sorted parallel key/value arrays.

The batched ingestion engine wants a store whose bulk operations are
array operations, the way the C++/Java implementations behind the paper
(and the DataSketches library it shipped in) amortize per-update cost
across whole buffers.  This store keeps the live counters in two dense,
preallocated NumPy columns::

    _keys   : uint64[capacity]   (ascending, first ``size`` entries live)
    _values : float64[capacity]  (parallel to ``_keys``)

Keeping the key column *sorted* buys three things at once:

* every lookup — scalar or batched — is a ``searchsorted`` binary
  search, so :meth:`get_many`/:meth:`add_many` over ``m`` keys cost one
  vectorized ``O(m log k)`` call instead of ``m`` Python probes;
* the decrement pass of ``DecrementCounters()`` is a pair of array
  operations (subtract, boolean-mask compress) — the "vectorized
  ``decrement_and_purge``" the batch engine leans on;
* the layout is a pure function of the key *set*, independent of
  insertion order, so scalar and batched ingestion converge to
  bit-identical state (and identical serialized bytes) by construction.

The tradeoff is scalar ``insert``, which must shift the tail of both
columns (``O(k)`` memmove).  That is the wrong store for one-at-a-time
feeding — the probing and dict backends exist for that — but in the
batch path inserts arrive grouped and are merged in bulk, so the shift
cost is paid once per segment rather than once per key.

Space is charged with the same model as the probing table
(``probing_table_bytes``) so equal-space comparisons across backends
remain about algorithms, not accounting.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidParameterError, TableFullError
from repro.prng import Xoroshiro128PlusPlus
from repro.table.accounting import next_power_of_two, probing_table_bytes
from repro.table.base import CounterStore
from repro.types import ItemId


class ColumnarCounterStore(CounterStore):
    """Bounded item -> count map on sorted parallel NumPy arrays.

    Parameters
    ----------
    capacity:
        Maximum number of counters (the paper's ``k``).
    initial_capacity:
        When given, allocate columns for only this many counters (rounded
        up to a power of two) and double up to ``capacity`` on overflow —
        the adaptive-growth mode.  The sorted layout is a pure function
        of the key set, so growth never perturbs anything observable.
    """

    __slots__ = ("_capacity", "_keys", "_values", "_size", "_alloc")

    def __init__(
        self, capacity: int, initial_capacity: Optional[int] = None
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        if initial_capacity is None:
            alloc = capacity
        else:
            if initial_capacity <= 0:
                raise InvalidParameterError(
                    f"initial_capacity must be positive, got {initial_capacity}"
                )
            alloc = min(capacity, next_power_of_two(min(initial_capacity, capacity)))
        self._alloc = alloc
        self._keys = np.zeros(alloc, dtype=np.uint64)
        self._values = np.zeros(alloc, dtype=np.float64)
        self._size = 0

    def _ensure_alloc(self, needed: int) -> None:
        """Grow the columns by doubling until ``needed`` counters fit."""
        if needed <= self._alloc:
            return
        alloc = self._alloc
        while alloc < needed:
            alloc *= 2
        alloc = min(alloc, self._capacity)
        keys = np.zeros(alloc, dtype=np.uint64)
        values = np.zeros(alloc, dtype=np.float64)
        size = self._size
        keys[:size] = self._keys[:size]
        values[:size] = self._values[:size]
        self._keys = keys
        self._values = values
        self._alloc = alloc

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    # -- scalar operations (binary search on the sorted key column) ----------

    def _position(self, key: ItemId) -> int:
        """Index of ``key`` in the live prefix, or -1 if unassigned."""
        size = self._size
        position = int(np.searchsorted(self._keys[:size], key))
        if position < size and int(self._keys[position]) == key:
            return position
        return -1

    def get(self, key: ItemId) -> Optional[float]:
        position = self._position(key)
        if position < 0:
            return None
        return float(self._values[position])

    def add_to(self, key: ItemId, delta: float) -> bool:
        position = self._position(key)
        if position < 0:
            return False
        self._values[position] += delta
        return True

    def insert(self, key: ItemId, value: float) -> None:
        # Exactly one binary search per insert: the same ``searchsorted``
        # position both rejects duplicates and locates the shift point
        # (a regression test pins the single-search, one-memmove-per-
        # column behavior).
        size = self._size
        position = int(np.searchsorted(self._keys[:size], key))
        if position < size and int(self._keys[position]) == key:
            raise InvalidParameterError(f"key {key} is already assigned a counter")
        if size >= self._capacity:
            raise TableFullError(
                f"store holds {size} counters, capacity {self._capacity}"
            )
        self._ensure_alloc(size + 1)
        self._shift_in(position, key, value)

    def _shift_in(self, position: int, key: ItemId, value: float) -> None:
        """Open ``position`` with one tail shift per column and write the pair.

        NumPy's overlapping basic-slice assignment is a single memmove per
        column — the cheapest possible O(k) insert for a dense sorted
        layout.
        """
        size = self._size
        self._keys[position + 1 : size + 1] = self._keys[position:size]
        self._values[position + 1 : size + 1] = self._values[position:size]
        self._keys[position] = key
        self._values[position] = value
        self._size = size + 1

    # -- batch operations (vectorized) ---------------------------------------

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        size = self._size
        keys = np.asarray(keys, dtype=np.uint64)
        positions = np.searchsorted(self._keys[:size], keys)
        clamped = np.minimum(positions, max(size - 1, 0))
        found = (positions < size) & (self._keys[clamped] == keys)
        out = np.full(len(keys), np.nan, dtype=np.float64)
        out[found] = self._values[positions[found]]
        return out

    def add_many(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        size = self._size
        keys = np.asarray(keys, dtype=np.uint64)
        positions = np.searchsorted(self._keys[:size], keys)
        clamped = np.minimum(positions, max(size - 1, 0))
        found = (positions < size) & (self._keys[clamped] == keys)
        if not found.all():
            missing = keys[~found]
            raise InvalidParameterError(
                f"add_many: key {int(missing[0])} has no counter assigned"
            )
        # Keys are distinct by contract, so plain fancy indexing is a
        # race-free scatter-add.
        self._values[positions] += deltas

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        count = len(keys)
        if count == 0:
            return
        size = self._size
        if size + count > self._capacity:
            raise TableFullError(
                f"store holds {size} counters, inserting {count} exceeds "
                f"capacity {self._capacity}"
            )
        self._ensure_alloc(size + count)
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.float64)
        # The sorted layout is insertion-order independent, so sort the
        # incoming block and merge it into the live prefix.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_values = values[order]
        if count > 1 and (sorted_keys[1:] == sorted_keys[:-1]).any():
            raise InvalidParameterError("insert_many: duplicate keys in batch")
        if size == 0:
            # Bulk load into an empty store: the sorted block IS the new
            # live prefix, no merge needed.
            self._keys[:count] = sorted_keys
            self._values[:count] = sorted_values
            self._size = count
            return
        positions = np.searchsorted(self._keys[:size], sorted_keys)
        collisions = positions < size
        if collisions.any() and (
            self._keys[positions[collisions]] == sorted_keys[collisions]
        ).any():
            raise InvalidParameterError(
                "insert_many: a key is already assigned a counter"
            )
        merged_keys = np.insert(self._keys[:size], positions, sorted_keys)
        merged_values = np.insert(self._values[:size], positions, sorted_values)
        self._keys[: size + count] = merged_keys
        self._values[: size + count] = merged_values
        self._size = size + count

    # -- bulk decrement (array masks) ----------------------------------------

    def adjust_all(self, delta: float) -> None:
        self._values[: self._size] += delta

    def scale_all(self, factor: float) -> None:
        self._values[: self._size] *= factor

    def purge_nonpositive(self) -> int:
        size = self._size
        survivors = self._values[:size] > 0.0
        kept = int(np.count_nonzero(survivors))
        if kept != size:
            # Boolean-mask extraction copies, so writing back into the
            # prefix is safe; the survivors stay key-sorted.
            self._keys[:kept] = self._keys[:size][survivors]
            self._values[:kept] = self._values[:size][survivors]
            self._size = kept
        return size - kept

    # -- iteration / sampling ------------------------------------------------

    def items(self) -> Iterator[tuple[ItemId, float]]:
        size = self._size
        keys = self._keys[:size].tolist()
        values = self._values[:size].tolist()
        return iter(zip(keys, values))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        size = self._size
        return self._keys[:size].copy(), self._values[:size].copy()

    def values_list(self) -> list[float]:
        return self._values[: self._size].tolist()

    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        size = self._size
        if size == 0:
            raise InvalidParameterError("cannot sample from an empty store")
        pool = self._values[:size].tolist()
        return [pool[rng.randrange(size)] for _ in range(count)]

    def clear(self) -> None:
        self._size = 0

    # -- accounting ----------------------------------------------------------

    def space_bytes(self) -> int:
        # Same model as the probing table so "equal space" sweeps compare
        # algorithms, not backends; adaptive stores are charged at their
        # current allocation, which is the point of growing lazily.
        return probing_table_bytes(self._alloc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarCounterStore(size={self._size}, capacity={self._capacity})"
