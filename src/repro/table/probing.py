"""The paper's linear-probing counter table (Section 2.3.3).

Layout
------
Three parallel arrays of length ``L = next_pow2(4k/3)``:

* ``keys[s]``   — the 64-bit item identifier stored in slot ``s``;
* ``values[s]`` — its approximate count (a float);
* ``states[s]`` — 0 when the slot is empty, otherwise the probe distance
  of the stored key from its preferred slot ``h(key)``, plus one.

Insertion and lookup are standard linear probing.  The operation the
paper adds is the decrement pass: subtract ``c*`` from every value and
delete every counter that becomes non-positive, *in place*, by walking
runs of occupied cells and shifting keys backward so that all future
probes still work (the "start at the end of a run ... shifting keys and
values forward as necessary" paragraph of Section 2.3.3).  No scratch
memory is allocated — that is precisely the property that lets the final
algorithm halve the footprint of the initial proposal.

The table also counts probe steps (``probe_count``) so benchmarks can
report hardware-independent access costs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import InvalidParameterError, TableFullError
from repro.hashing.mixers import hash_u64
from repro.prng import Xoroshiro128PlusPlus
from repro.table.accounting import BYTES_PER_SLOT, HEADER_BYTES, table_length
from repro.table.base import CounterStore
from repro.types import ItemId

_MASK64 = (1 << 64) - 1


class LinearProbingTable(CounterStore):
    """Bounded open-addressing counter map with backward-shift deletion.

    Parameters
    ----------
    capacity:
        Maximum number of assigned counters (the paper's ``k``).
    hash_seed:
        Seed for the slot hash.  Sketches that may be merged should use
        distinct seeds (Section 3.2's note on hash-function reuse).
    load_factor:
        Maximum fill fraction; the array length is the smallest power of
        two with ``capacity / length <= load_factor`` (default 3/4, the
        paper's ``L ~ 4k/3``).
    """

    __slots__ = (
        "_capacity",
        "_mask",
        "_keys",
        "_values",
        "_states",
        "_size",
        "_seed",
        "probe_count",
    )

    def __init__(
        self,
        capacity: int,
        hash_seed: int = 0,
        load_factor: float = 0.75,
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        length = table_length(capacity, load_factor)
        self._capacity = capacity
        self._mask = length - 1
        self._keys = [0] * length
        self._values = [0.0] * length
        self._states = [0] * length
        self._size = 0
        self._seed = hash_seed
        #: Total linear-probing steps taken by lookups and inserts.
        self.probe_count = 0

    # -- basic introspection -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def length(self) -> int:
        """Physical array length ``L`` (a power of two)."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._size

    def load(self) -> float:
        """Current fill fraction of the physical arrays."""
        return self._size / self.length

    # -- hashing -------------------------------------------------------------

    def _home_slot(self, key: ItemId) -> int:
        return hash_u64(key, self._seed) & self._mask

    # -- lookup / update -----------------------------------------------------

    def get(self, key: ItemId) -> Optional[float]:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        probes = 0
        while states[slot] != 0:
            probes += 1
            if keys[slot] == key:
                self.probe_count += probes
                return self._values[slot]
            slot = (slot + 1) & mask
        self.probe_count += probes + 1
        return None

    def add_to(self, key: ItemId, delta: float) -> bool:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        probes = 0
        while states[slot] != 0:
            probes += 1
            if keys[slot] == key:
                self._values[slot] += delta
                self.probe_count += probes
                return True
            slot = (slot + 1) & mask
        self.probe_count += probes + 1
        return False

    def insert(self, key: ItemId, value: float) -> None:
        if self._size >= self._capacity:
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        states = self._states
        keys = self._keys
        mask = self._mask
        home = self._home_slot(key)
        slot = home
        probes = 0
        while states[slot] != 0:
            if keys[slot] == key:
                raise InvalidParameterError(f"key {key} is already assigned a counter")
            probes += 1
            slot = (slot + 1) & mask
        keys[slot] = key
        self._values[slot] = value
        states[slot] = ((slot - home) & mask) + 1
        self._size += 1
        self.probe_count += probes + 1

    def put(self, key: ItemId, value: float) -> None:
        """Set ``key`` to ``value``, inserting if absent."""
        states = self._states
        keys = self._keys
        mask = self._mask
        home = self._home_slot(key)
        slot = home
        while states[slot] != 0:
            if keys[slot] == key:
                self._values[slot] = value
                return
            slot = (slot + 1) & mask
        if self._size >= self._capacity:
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        keys[slot] = key
        self._values[slot] = value
        states[slot] = ((slot - home) & mask) + 1
        self._size += 1

    # -- bulk decrement ------------------------------------------------------

    def adjust_all(self, delta: float) -> None:
        states = self._states
        values = self._values
        for slot in range(len(states)):
            if states[slot] != 0:
                values[slot] += delta

    def scale_all(self, factor: float) -> None:
        states = self._states
        values = self._values
        for slot in range(len(states)):
            if states[slot] != 0:
                values[slot] *= factor

    def purge_nonpositive(self) -> int:
        states = self._states
        values = self._values
        removed = 0
        slot = 0
        length = len(states)
        while slot < length:
            if states[slot] != 0 and values[slot] <= 0.0:
                self._remove_at(slot)
                removed += 1
                # Backward shifting may have moved another counter into
                # this slot; re-examine it before advancing.
            else:
                slot += 1
        return removed

    def _remove_at(self, slot: int) -> None:
        """Empty ``slot`` and backward-shift the rest of its probe run.

        Walks forward from the freed cell; any later element of the run
        whose preferred slot lies at or before the free cell is moved back
        into it (shrinking its probe distance), and the walk continues
        from the element's old position.  Elements already in (or after)
        their preferred slot relative to the gap are left in place.  The
        walk ends at the first empty cell.
        """
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        states[slot] = 0
        self._size -= 1
        free = slot
        scan = (slot + 1) & mask
        while states[scan] != 0:
            distance = states[scan] - 1
            home = (scan - distance) & mask
            free_distance = (free - home) & mask
            if free_distance < distance:
                keys[free] = keys[scan]
                values[free] = values[scan]
                states[free] = free_distance + 1
                states[scan] = 0
                free = scan
            scan = (scan + 1) & mask

    # -- iteration / sampling ------------------------------------------------

    def items(self) -> Iterator[tuple[ItemId, float]]:
        states = self._states
        keys = self._keys
        values = self._values
        for slot in range(len(states)):
            if states[slot] != 0:
                yield keys[slot], values[slot]

    def values_list(self) -> list[float]:
        states = self._states
        values = self._values
        return [values[s] for s in range(len(states)) if states[s] != 0]

    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        """Uniform with-replacement sample of live counter values.

        Rejection-samples physical slots; with the table at its working
        load (>= 3/8 even right after a purge-triggering insert sequence)
        the expected number of probes per draw is a small constant.
        """
        if self._size == 0:
            raise InvalidParameterError("cannot sample from an empty table")
        states = self._states
        values = self._values
        length = len(states)
        out = []
        while len(out) < count:
            slot = rng.randrange(length)
            if states[slot] != 0:
                out.append(values[slot])
        return out

    def clear(self) -> None:
        length = self._mask + 1
        self._keys = [0] * length
        self._values = [0.0] * length
        self._states = [0] * length
        self._size = 0

    # -- accounting ----------------------------------------------------------

    def space_bytes(self) -> int:
        return BYTES_PER_SLOT * self.length + HEADER_BYTES

    def max_state(self) -> int:
        """Largest probe-distance state currently stored (diagnostics).

        Section 2.3.3 argues 2-byte states suffice because distances stay
        tiny at load 3/4; tests use this to confirm the claim empirically.
        """
        return max(self._states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearProbingTable(size={self._size}, capacity={self._capacity}, "
            f"length={self.length})"
        )
