"""The paper's linear-probing counter table (Section 2.3.3).

Layout
------
Three parallel NumPy arrays of length ``L = next_pow2(4k/3)``:

* ``keys[s]``   — the 64-bit item identifier stored in slot ``s``;
* ``values[s]`` — its approximate count (a float);
* ``states[s]`` — 0 when the slot is empty, otherwise the probe distance
  of the stored key from its preferred slot ``h(key)``, plus one.

Insertion and lookup are standard linear probing.  The operation the
paper adds is the decrement pass: subtract ``c*`` from every value and
delete every counter that becomes non-positive, *in place*, by walking
runs of occupied cells and shifting keys backward so that all future
probes still work (the "start at the end of a run ... shifting keys and
values forward as necessary" paragraph of Section 2.3.3).  No scratch
memory is allocated — that is precisely the property that lets the final
algorithm halve the footprint of the initial proposal.

Batch operations
----------------
Because the parallel arrays are NumPy columns, the bulk operations the
batched ingestion engine calls are *vectorized probe walks*: home slots
for a whole key block are hashed in one array pass
(:func:`repro.hashing.mixers.hash_u64_array`), and each probing round
gathers the states/keys of every still-unresolved key at once, resolving
the overwhelming majority on the first probe at realistic load factors.
Only keys still colliding after a round advance (as an ever-shrinking
index set) to the next.  The walks visit exactly the slots the scalar
loops would visit, so results — and ``probe_count`` for lookups — are
bit-identical to the equivalent scalar call sequence.

Adaptive growth
---------------
With ``initial_capacity`` set, the table starts at a small power-of-two
length and *doubles up to* the fixed ``L`` on overflow, mirroring the
paper's doubling hash map: early-stream updates never pay for the full
array.  While growing, keys are kept in an insertion log so each rehash
replays the original insertion order — once the table reaches its final
length its layout is bit-identical to a fixed-capacity table fed the
same operations, which keeps counter *sampling* (and therefore every
decrement decision downstream) identical too.

The table also counts probe steps (``probe_count``) so benchmarks can
report hardware-independent access costs.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidParameterError, TableFullError
from repro.hashing.mixers import hash_u64, hash_u64_array
from repro.native import register_table, seed_mix, table_kernels
from repro.prng import Xoroshiro128PlusPlus
from repro.table.accounting import BYTES_PER_SLOT, HEADER_BYTES, table_length
from repro.table.base import CounterStore
from repro.types import ItemId

_MASK64 = (1 << 64) - 1


class LinearProbingTable(CounterStore):
    """Bounded open-addressing counter map with backward-shift deletion.

    Parameters
    ----------
    capacity:
        Maximum number of assigned counters (the paper's ``k``).
    hash_seed:
        Seed for the slot hash.  Sketches that may be merged should use
        distinct seeds (Section 3.2's note on hash-function reuse).
    load_factor:
        Maximum fill fraction; the array length is the smallest power of
        two with ``capacity / length <= load_factor`` (default 3/4, the
        paper's ``L ~ 4k/3``).
    initial_capacity:
        When given, start the arrays small enough for only this many
        counters and double up to the fixed length on demand (the
        paper's doubling hash map).  ``None`` (default) allocates the
        full-size arrays up front.
    """

    __slots__ = (
        "_capacity",
        "_mask",
        "_keys",
        "_values",
        "_states",
        "_size",
        "_seed",
        "_load_factor",
        "_final_length",
        "_stage_capacity",
        "_insertion_log",
        "probe_count",
    )

    def __init__(
        self,
        capacity: int,
        hash_seed: int = 0,
        load_factor: float = 0.75,
        initial_capacity: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._seed = hash_seed
        self._load_factor = load_factor
        self._final_length = table_length(capacity, load_factor)
        if initial_capacity is None:
            length = self._final_length
        else:
            if initial_capacity <= 0:
                raise InvalidParameterError(
                    f"initial_capacity must be positive, got {initial_capacity}"
                )
            length = min(
                self._final_length,
                table_length(min(initial_capacity, capacity), load_factor),
            )
        self._allocate(length)
        #: Total linear-probing steps taken by lookups and inserts.
        self.probe_count = 0

    def _allocate(self, length: int) -> None:
        """(Re)allocate empty arrays of ``length`` slots."""
        self._mask = length - 1
        self._keys = np.zeros(length, dtype=np.uint64)
        self._values = np.zeros(length, dtype=np.float64)
        self._states = np.zeros(length, dtype=np.int64)
        self._size = 0
        self._stage_capacity = min(
            self._capacity, int(length * self._load_factor)
        )
        # The insertion log exists only while the table can still grow:
        # each rehash replays it so the layout stays the one the original
        # insertion order would have produced at the new length.
        self._insertion_log: Optional[list[int]] = (
            [] if length < self._final_length else None
        )

    # -- basic introspection -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def length(self) -> int:
        """Physical array length ``L`` (a power of two, current stage)."""
        return self._mask + 1

    def __len__(self) -> int:
        return self._size

    def load(self) -> float:
        """Current fill fraction of the physical arrays."""
        return self._size / self.length

    # -- hashing -------------------------------------------------------------

    def _home_slot(self, key: ItemId) -> int:
        return hash_u64(key, self._seed) & self._mask

    def _home_slots_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_home_slot`.

        Falls back to the scalar method per key when a subclass overrides
        ``_home_slot`` (the white-box layout tests rig it), so batch and
        scalar paths always agree on every home slot.
        """
        if type(self)._home_slot is not LinearProbingTable._home_slot:
            return np.array(
                [self._home_slot(key) for key in keys.tolist()], dtype=np.int64
            )
        return (hash_u64_array(keys, self._seed) & np.uint64(self._mask)).astype(
            np.int64
        )

    # -- adaptive growth -----------------------------------------------------

    def _ensure_slot(self) -> None:
        """Raise at ``k``; double the arrays first when staged growth is on."""
        if self._size >= self._capacity:
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        if self._size >= self._stage_capacity:
            self._grow()

    def _grow(self) -> None:
        """Double the physical arrays and rehash in original insertion order."""
        length = (self._mask + 1) * 2
        log = self._insertion_log
        if log is None:  # pragma: no cover - _ensure_slot never lets this happen
            raise TableFullError(
                f"table holds {self._size} counters, capacity {self._capacity}"
            )
        occupied = np.flatnonzero(self._states != 0)
        values_of = dict(
            zip(self._keys[occupied].tolist(), self._values[occupied].tolist())
        )
        self._allocate(length)
        for key in log:
            self._rehash_place(key, values_of[key])

    def _rehash_place(self, key: ItemId, value: float) -> None:
        """Place a key known to be absent (no duplicate check, no probe tax)."""
        states = self._states
        keys = self._keys
        mask = self._mask
        home = self._home_slot(key)
        slot = home
        while states[slot] != 0:
            slot = (slot + 1) & mask
        keys[slot] = key
        self._values[slot] = value
        states[slot] = ((slot - home) & mask) + 1
        self._size += 1
        if self._insertion_log is not None:
            self._insertion_log.append(key)

    # -- lookup / update -----------------------------------------------------

    def get(self, key: ItemId) -> Optional[float]:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        probes = 0
        while states[slot] != 0:
            probes += 1
            if keys[slot] == key:
                self.probe_count += probes
                return float(self._values[slot])
            slot = (slot + 1) & mask
        self.probe_count += probes + 1
        return None

    def add_to(self, key: ItemId, delta: float) -> bool:
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        probes = 0
        while states[slot] != 0:
            probes += 1
            if keys[slot] == key:
                self._values[slot] += delta
                self.probe_count += probes
                return True
            slot = (slot + 1) & mask
        self.probe_count += probes + 1
        return False

    def insert(self, key: ItemId, value: float) -> None:
        self._ensure_slot()
        states = self._states
        keys = self._keys
        mask = self._mask
        home = self._home_slot(key)
        slot = home
        probes = 0
        while states[slot] != 0:
            if keys[slot] == key:
                raise InvalidParameterError(f"key {key} is already assigned a counter")
            probes += 1
            slot = (slot + 1) & mask
        keys[slot] = key
        self._values[slot] = value
        states[slot] = ((slot - home) & mask) + 1
        self._size += 1
        self.probe_count += probes + 1
        if self._insertion_log is not None:
            self._insertion_log.append(key)

    def put(self, key: ItemId, value: float) -> None:
        """Set ``key`` to ``value``, inserting if absent."""
        states = self._states
        keys = self._keys
        mask = self._mask
        slot = self._home_slot(key)
        while states[slot] != 0:
            if keys[slot] == key:
                self._values[slot] = value
                return
            slot = (slot + 1) & mask
        self._ensure_slot()
        self._rehash_place(key, value)

    # -- batch operations (vectorized probe walks) ---------------------------

    def _locate_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve every key to a slot by gather/scatter probing rounds.

        Returns ``(slots, found)``; ``slots[i]`` is meaningful only where
        ``found[i]``.  Round ``r`` inspects the distance-``r`` slot of
        every still-unresolved key at once — at realistic load factors
        the first round resolves the vast majority, and the active set
        shrinks geometrically after it.  ``probe_count`` advances by one
        per slot inspection, exactly as the scalar loops count.
        """
        n = len(keys)
        found = np.zeros(n, dtype=bool)
        slots = self._home_slots_array(keys)
        if n == 0 or self._size == 0:
            self.probe_count += n
            return slots, found
        states = self._states
        table_keys = self._keys
        mask = self._mask
        active = np.arange(n)
        probes = 0
        while active.size:
            probes += active.size
            s = slots[active]
            st = states[s]
            occupied = st != 0
            hit = occupied & (table_keys[s] == keys[active])
            if hit.any():
                found[active[hit]] = True
            nxt = active[occupied & ~hit]
            if nxt.size:
                slots[nxt] = (slots[nxt] + 1) & mask
            active = nxt
        self.probe_count += probes
        return slots, found

    # Kernel-input coercion: contiguous AND aligned (deserialized blobs
    # arrive as unaligned ``frombuffer`` views), for both dispatch paths.
    @staticmethod
    def _as_input(arr: np.ndarray, dtype: type) -> np.ndarray:
        return np.require(arr, dtype=dtype, requirements=("C", "A"))

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        keys = self._as_input(keys, np.uint64)
        native = table_kernels(self)
        if native is not None:
            kernels, robinhood = native
            out, probes = kernels.get_many(
                keys,
                self._keys,
                self._values,
                self._states,
                seed_mix(self._seed),
                robinhood,
            )
            self.probe_count += probes
            return out
        slots, found = self._locate_many(keys)
        out = np.full(len(keys), np.nan, dtype=np.float64)
        if found.any():
            out[found] = self._values[slots[found]]
        return out

    def add_many(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        keys = self._as_input(keys, np.uint64)
        deltas = self._as_input(deltas, np.float64)
        native = table_kernels(self)
        if native is not None:
            kernels, robinhood = native
            probes, missing = kernels.add_many(
                keys,
                deltas,
                self._keys,
                self._values,
                self._states,
                seed_mix(self._seed),
                robinhood,
            )
            # The walk charges every key's probes even when one is
            # missing, exactly like the vectorized rounds below.
            self.probe_count += probes
            if missing >= 0:
                raise InvalidParameterError(
                    f"add_many: key {int(keys[missing])} has no counter assigned"
                )
            return
        slots, found = self._locate_many(keys)
        if not found.all():
            missing_keys = keys[~found]
            raise InvalidParameterError(
                f"add_many: key {int(missing_keys[0])} has no counter assigned"
            )
        # Keys are distinct by contract, so plain fancy indexing is a
        # race-free scatter-add.
        self._values[slots] += deltas

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        count = len(keys)
        if count == 0:
            return
        if self._size + count > self._capacity:
            raise TableFullError(
                f"store holds {self._size} counters, inserting {count} exceeds "
                f"capacity {self._capacity}"
            )
        keys = self._as_input(keys, np.uint64)
        values = self._as_input(values, np.float64)
        native = table_kernels(self)
        if native is not None:
            # Native tables are at final length (the gate requires it),
            # so the staged-growth loop below would be a single block.
            kernels, robinhood = native
            try:
                probes = kernels.insert_many(
                    keys,
                    values,
                    self._keys,
                    self._values,
                    self._states,
                    seed_mix(self._seed),
                    robinhood,
                )
            except ValueError as exc:
                # Duplicate key, detected before any mutation.
                raise InvalidParameterError(str(exc)) from None
            self._size += count
            self.probe_count += probes
            return
        start = 0
        while start < count:
            if self._size >= self._stage_capacity:
                self._grow()
            room = self._stage_capacity - self._size
            stop = min(count, start + room)
            self._insert_block(keys[start:stop], values[start:stop])
            start = stop

    def _insert_block(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert a block that fits the current stage, scalar-equivalently."""
        n = len(keys)
        states = self._states
        table_keys = self._keys
        table_values = self._values
        mask = self._mask
        homes = self._home_slots_array(keys)
        # Fast path: every home slot empty and all homes distinct.  The
        # scalar insert sequence would place each key exactly at its home
        # regardless of order, so one scatter reproduces it bit-for-bit.
        if n == 1:
            distinct = True
        else:
            in_order = np.sort(homes)
            distinct = not (in_order[1:] == in_order[:-1]).any()
        if distinct and not states[homes].any():
            table_keys[homes] = keys
            table_values[homes] = values
            states[homes] = 1
            self._size += n
            self.probe_count += n
            if self._insertion_log is not None:
                self._insertion_log.extend(keys.tolist())
            return
        # Slow path: replay the scalar insert sequence, but walk a plain
        # Python occupancy list (NumPy scalar indexing would dominate the
        # loop) and scatter the placements back in one vectorized pass.
        # FCFS probing places each key at the first free slot of its
        # probe path, so positions depend only on occupancy.
        occupancy = states.tolist()
        stored_keys = table_keys.tolist()
        positions = []
        append = positions.append
        for key, home in zip(keys.tolist(), homes.tolist()):
            slot = home
            while occupancy[slot]:
                if stored_keys[slot] == key:
                    raise InvalidParameterError(
                        f"key {key} is already assigned a counter"
                    )
                slot = (slot + 1) & mask
            occupancy[slot] = 1
            stored_keys[slot] = key
            append(slot)
        pos = np.array(positions, dtype=np.int64)
        distances = (pos - homes) & mask
        table_keys[pos] = keys
        table_values[pos] = values
        states[pos] = distances + 1
        self._size += n
        # Scalar parity: each insert scans its probe distance in occupied
        # slots plus the final empty one.
        self.probe_count += int(distances.sum()) + n
        if self._insertion_log is not None:
            self._insertion_log.extend(keys.tolist())

    # -- bulk decrement ------------------------------------------------------

    def adjust_all(self, delta: float) -> None:
        np.add(
            self._values, delta, out=self._values, where=self._states != 0
        )

    def scale_all(self, factor: float) -> None:
        np.multiply(
            self._values, factor, out=self._values, where=self._states != 0
        )

    def purge_nonpositive(self) -> int:
        native = table_kernels(self)
        if native is not None:
            # The compiled sweep IS the canonical scalar 0..L-1
            # backward-shift pass both strategies below reproduce.  The
            # gate guarantees no insertion log to filter.
            kernels, robinhood = native
            freed = kernels.purge_nonpositive(
                self._keys, self._values, self._states, robinhood
            )
            self._size -= freed
            return freed
        states = self._states
        values = self._values
        # Vectorized victim prescan decides the strategy.  Either way the
        # result is bit-identical (live cells) to the scalar 0..L-1
        # backward-shift sweep; an exhaustive layout test pins that.
        occupied = states != 0
        victims = np.flatnonzero(occupied & (values <= 0.0))
        if victims.size == 0:
            return 0
        if victims.size * 4 >= self._size:
            # Dense victims — the decrement-pass regime, which frees
            # about half the counters: rebuilding from the survivors
            # (bulk-hashed, replayed in cyclic run order) is much cheaper
            # than one backward shift per victim.
            self._purge_rebuild(occupied)
        else:
            # Sparse victims: backward-shift in place, walking only the
            # runs that contain victims.  Each walk covers the originally
            # occupied extent of its run — shifts free cells mid-run and
            # move victims past them, but they can never carry a counter
            # across a cell that started out empty.
            length = self._mask + 1
            positions = victims.tolist()
            i = 0
            while i < len(positions):
                slot = positions[i]
                while slot < length and occupied[slot]:
                    if states[slot] != 0 and values[slot] <= 0.0:
                        self._remove_at(slot)
                        # Backward shifting may have moved another counter
                        # into this slot; re-examine it before advancing.
                    else:
                        slot += 1
                i += 1
                while i < len(positions) and positions[i] <= slot:
                    i += 1
        if self._insertion_log is not None:
            live = set(self._keys[self._states != 0].tolist())
            self._insertion_log = [
                key for key in self._insertion_log if key in live
            ]
        # Values never change during a purge and shifts cannot carry a
        # victim past the sweep (they only move counters toward their
        # homes), so exactly the prescanned victims get freed.
        return int(victims.size)

    def _purge_rebuild(self, occupied: np.ndarray) -> None:
        """Drop non-positive counters by re-placing the survivors.

        Survivors are replayed in *cyclic run order* — ascending slots
        starting just past the first empty cell, so every probe run is
        visited start to end even when it wraps — which reproduces the
        backward-shift sweep's final layout exactly: both place each
        survivor at the first free slot of its probe sequence, in the
        same order.
        """
        first_empty = int(np.flatnonzero(~occupied)[0])
        length = self._mask + 1
        order = np.concatenate(
            (
                np.arange(first_empty + 1, length, dtype=np.int64),
                np.arange(0, first_empty, dtype=np.int64),
            )
        )
        live_slots = order[occupied[order]]
        live_values = self._values[live_slots]
        keep = live_values > 0.0
        keys = self._keys[live_slots[keep]]
        values = live_values[keep]
        self._states[:] = 0
        self._size = 0
        homes = self._home_slots_array(keys)
        self._rebuild_place(keys, values, homes)

    def _rebuild_place(
        self, keys: np.ndarray, values: np.ndarray, homes: np.ndarray
    ) -> None:
        """Re-place purge survivors (probe tax not charged: the in-place
        sweep it replaces never counted its shifts either).

        The table is empty here, so FCFS positions follow from a pure
        occupancy walk on a Python list; the placements scatter back in
        one vectorized pass per column.
        """
        mask = self._mask
        occupancy = [0] * (mask + 1)
        positions = []
        append = positions.append
        for home in homes.tolist():
            slot = home
            while occupancy[slot]:
                slot = (slot + 1) & mask
            occupancy[slot] = 1
            append(slot)
        pos = np.array(positions, dtype=np.int64)
        self._keys[pos] = keys
        self._values[pos] = values
        self._states[pos] = ((pos - homes) & mask) + 1
        self._size = len(positions)

    def _remove_at(self, slot: int) -> None:
        """Empty ``slot`` and backward-shift the rest of its probe run.

        Walks forward from the freed cell; any later element of the run
        whose preferred slot lies at or before the free cell is moved back
        into it (shrinking its probe distance), and the walk continues
        from the element's old position.  Elements already in (or after)
        their preferred slot relative to the gap are left in place.  The
        walk ends at the first empty cell.
        """
        states = self._states
        keys = self._keys
        values = self._values
        mask = self._mask
        states[slot] = 0
        self._size -= 1
        free = slot
        scan = (slot + 1) & mask
        while states[scan] != 0:
            distance = states[scan] - 1
            home = (scan - distance) & mask
            free_distance = (free - home) & mask
            if free_distance < distance:
                keys[free] = keys[scan]
                values[free] = values[scan]
                states[free] = free_distance + 1
                states[scan] = 0
                free = scan
            scan = (scan + 1) & mask

    # -- iteration / sampling ------------------------------------------------

    def items(self) -> Iterator[tuple[ItemId, float]]:
        occupied = np.flatnonzero(self._states != 0)
        return iter(
            zip(self._keys[occupied].tolist(), self._values[occupied].tolist())
        )

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        occupied = np.flatnonzero(self._states != 0)
        return self._keys[occupied], self._values[occupied]

    def serial_items(self) -> Iterator[tuple[ItemId, float]]:
        """Items in an order whose greedy re-insertion reproduces the
        physical layout slot for slot.

        Cyclic slot order starting at an empty slot has that property
        for linear-probing layouts (each key re-probes over residents
        already restored to their original slots and lands exactly where
        it was).  Plain ascending order — what :meth:`items` yields — is
        already such an order *unless* an occupancy run wraps past the
        end of the arrays, so rotation is applied only in the wrapped
        case and serialized bytes for every other state are unchanged.
        Serialization uses this; without it, a blob written from a
        wrapped state decodes to a table with the same contents but a
        different layout, breaking byte-identical replication.
        """
        states = self._states
        occupied = np.flatnonzero(states != 0)
        # A key at slot s with probe distance > s (states[s] - 1 > s) has
        # its home near the end of the arrays: its run wraps, and only
        # then does ascending order break down.
        if occupied.size and bool((states[occupied] > occupied + 1).any()):
            empties = np.flatnonzero(states == 0)
            if empties.size:  # always true: the load factor is < 1
                split = int(np.searchsorted(occupied, int(empties[0])))
                occupied = np.concatenate([occupied[split:], occupied[:split]])
        return iter(
            zip(self._keys[occupied].tolist(), self._values[occupied].tolist())
        )

    def values_list(self) -> list[float]:
        return self._values[self._states != 0].tolist()

    def sample_values(self, count: int, rng: Xoroshiro128PlusPlus) -> list[float]:
        """Uniform with-replacement sample of live counter values.

        Rejection-samples physical slots; with the table at its working
        load (>= 3/8 even right after a purge-triggering insert sequence)
        the expected number of probes per draw is a small constant.
        """
        if self._size == 0:
            raise InvalidParameterError("cannot sample from an empty table")
        states = self._states.tolist()
        values = self._values.tolist()
        length = len(states)
        out = []
        while len(out) < count:
            slot = rng.randrange(length)
            if states[slot] != 0:
                out.append(values[slot])
        return out

    def clear(self) -> None:
        self._allocate(self._mask + 1)

    # -- accounting ----------------------------------------------------------

    def space_bytes(self) -> int:
        # Charged at the *current* stage length: the adaptive-growth mode
        # exists precisely so early-stream tables occupy less.
        return BYTES_PER_SLOT * self.length + HEADER_BYTES

    def max_state(self) -> int:
        """Largest probe-distance state currently stored (diagnostics).

        Section 2.3.3 argues 2-byte states suffice because distances stay
        tiny at load 3/4; tests use this to confirm the claim empirically.
        """
        return int(self._states.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearProbingTable(size={self._size}, capacity={self._capacity}, "
            f"length={self.length})"
        )


# Exactly this class (not subclasses — the white-box layout tests rig
# ``_home_slot``) may be served by the compiled kernels.
register_table(LinearProbingTable, robinhood=0)
