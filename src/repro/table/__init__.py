"""Counter storage substrates.

The paper's implementation (Section 2.3.3) keeps counters in a
linear-probing hash table laid out as parallel key/value arrays of length
``L = next_pow2(4k/3)`` plus a compact state array recording each key's
probe distance, with in-place backward-shift deletion during decrement
purges.  :class:`LinearProbingTable` reproduces that structure.

:class:`DictCounterStore` offers the same interface on a plain Python
``dict`` — in CPython the built-in dict is the pragmatic fast path, and an
ablation benchmark compares the two backends.
"""

from repro.table.accounting import probing_table_bytes, table_length
from repro.table.base import CounterStore
from repro.table.dictstore import DictCounterStore
from repro.table.probing import LinearProbingTable
from repro.table.robinhood import RobinHoodTable

__all__ = [
    "CounterStore",
    "LinearProbingTable",
    "RobinHoodTable",
    "DictCounterStore",
    "table_length",
    "probing_table_bytes",
]


def make_store(backend: str, capacity: int, seed: int = 0) -> CounterStore:
    """Construct a counter store by backend name.

    Backends: ``"probing"`` (the paper's Section 2.3.3 layout),
    ``"robinhood"`` (the displacement variant, for the backend ablation),
    and ``"dict"`` (CPython's builtin table).
    """
    if backend == "probing":
        return LinearProbingTable(capacity, hash_seed=seed)
    if backend == "robinhood":
        return RobinHoodTable(capacity, hash_seed=seed)
    if backend == "dict":
        return DictCounterStore(capacity)
    raise ValueError(f"unknown counter-store backend: {backend!r}")
