"""Counter storage substrates.

The paper's implementation (Section 2.3.3) keeps counters in a
linear-probing hash table laid out as parallel key/value arrays of length
``L = next_pow2(4k/3)`` plus a compact state array recording each key's
probe distance, with in-place backward-shift deletion during decrement
purges.  :class:`LinearProbingTable` reproduces that structure.

:class:`DictCounterStore` offers the same interface on a plain Python
``dict`` — in CPython the built-in dict is the pragmatic fast path, and an
ablation benchmark compares the two backends.

:class:`ColumnarCounterStore` keeps the counters in sorted parallel
NumPy arrays; its bulk operations (``get_many``/``add_many``/
``insert_many`` and a masked ``decrement_and_purge``) are the substrate
of the batched ingestion engine.
"""

from repro.table.accounting import probing_table_bytes, table_length
from repro.table.base import CounterStore
from repro.table.columnar import ColumnarCounterStore
from repro.table.dictstore import DictCounterStore
from repro.table.probing import LinearProbingTable
from repro.table.robinhood import RobinHoodTable

__all__ = [
    "CounterStore",
    "LinearProbingTable",
    "RobinHoodTable",
    "DictCounterStore",
    "ColumnarCounterStore",
    "table_length",
    "probing_table_bytes",
    "make_store",
    "BACKEND_NAMES",
]

#: Every counter-store backend name ``make_store`` accepts.
BACKEND_NAMES = ("probing", "robinhood", "dict", "columnar")


def make_store(backend: str, capacity: int, seed: int = 0) -> CounterStore:
    """Construct a counter store by backend name.

    Backends: ``"probing"`` (the paper's Section 2.3.3 layout),
    ``"robinhood"`` (the displacement variant, for the backend ablation),
    ``"dict"`` (CPython's builtin table), and ``"columnar"`` (sorted
    NumPy parallel arrays with vectorized batch operations).
    """
    if backend == "probing":
        return LinearProbingTable(capacity, hash_seed=seed)
    if backend == "robinhood":
        return RobinHoodTable(capacity, hash_seed=seed)
    if backend == "dict":
        return DictCounterStore(capacity)
    if backend == "columnar":
        return ColumnarCounterStore(capacity)
    raise ValueError(f"unknown counter-store backend: {backend!r}")
