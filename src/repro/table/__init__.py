"""Counter storage substrates.

The paper's implementation (Section 2.3.3) keeps counters in a
linear-probing hash table laid out as parallel key/value arrays of length
``L = next_pow2(4k/3)`` plus a compact state array recording each key's
probe distance, with in-place backward-shift deletion during decrement
purges.  :class:`LinearProbingTable` reproduces that structure.

:class:`DictCounterStore` offers the same interface on a plain Python
``dict`` — in CPython the built-in dict is the pragmatic fast path, and an
ablation benchmark compares the two backends.

:class:`ColumnarCounterStore` keeps the counters in sorted parallel
NumPy arrays; its bulk operations (``get_many``/``add_many``/
``insert_many`` and a masked ``decrement_and_purge``) are the substrate
of the batched ingestion engine.
"""

from repro.table.accounting import probing_table_bytes, table_length
from repro.table.base import CounterStore
from repro.table.columnar import ColumnarCounterStore
from repro.table.dictstore import DictCounterStore
from repro.table.probing import LinearProbingTable
from repro.table.robinhood import RobinHoodTable

__all__ = [
    "CounterStore",
    "LinearProbingTable",
    "RobinHoodTable",
    "DictCounterStore",
    "ColumnarCounterStore",
    "table_length",
    "probing_table_bytes",
    "make_store",
    "BACKEND_NAMES",
    "GROWTH_MODES",
    "ADAPTIVE_INITIAL_CAPACITY",
]

#: Every counter-store backend name ``make_store`` accepts.
BACKEND_NAMES = ("probing", "robinhood", "dict", "columnar")

#: Every table-growth mode ``make_store`` accepts.
GROWTH_MODES = ("fixed", "adaptive")

#: Where adaptive-growth stores start: enough room for this many counters,
#: doubling up to the configured capacity on overflow (the paper's hash
#: map "initially contains 2^5 slots and doubles in size when full").
ADAPTIVE_INITIAL_CAPACITY = 16


def make_store(
    backend: str, capacity: int, seed: int = 0, growth: str = "fixed"
) -> CounterStore:
    """Construct a counter store by backend name.

    Backends: ``"probing"`` (the paper's Section 2.3.3 layout),
    ``"robinhood"`` (the displacement variant, for the backend ablation),
    ``"dict"`` (CPython's builtin table), and ``"columnar"`` (sorted
    NumPy parallel arrays with vectorized batch operations).

    ``growth="adaptive"`` starts the store small
    (:data:`ADAPTIVE_INITIAL_CAPACITY` counters) and doubles it up to
    ``capacity`` on overflow, mirroring the paper's doubling hash map —
    early-stream updates never touch full-size arrays.  ``"fixed"``
    (default) allocates everything up front.
    """
    if growth not in GROWTH_MODES:
        raise ValueError(f"unknown growth mode: {growth!r}")
    initial = ADAPTIVE_INITIAL_CAPACITY if growth == "adaptive" else None
    if backend == "probing":
        return LinearProbingTable(capacity, hash_seed=seed, initial_capacity=initial)
    if backend == "robinhood":
        return RobinHoodTable(capacity, hash_seed=seed, initial_capacity=initial)
    if backend == "dict":
        return DictCounterStore(capacity, initial_capacity=initial)
    if backend == "columnar":
        return ColumnarCounterStore(capacity, initial_capacity=initial)
    raise ValueError(f"unknown counter-store backend: {backend!r}")
