"""Quickselect (Hoare's Algorithm 65, "FIND") implemented from scratch.

Expected O(n) selection of the r-th smallest element of a list, in place,
with pivots drawn from a caller-supplied :class:`Xoroshiro128PlusPlus` so
results (and run times) are reproducible.  A deterministic fallback pivot
(middle element) is used when no generator is supplied.
"""

from __future__ import annotations

from typing import MutableSequence, Optional

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus


def quickselect(
    values: MutableSequence[float],
    rank: int,
    rng: Optional[Xoroshiro128PlusPlus] = None,
) -> float:
    """Return the element of ``values`` with 0-based ``rank`` in sorted order.

    ``values`` is partially reordered in place (that is what lets the MED
    algorithm avoid a full sort).  Runs in expected linear time.
    """
    n = len(values)
    if not 0 <= rank < n:
        raise InvalidParameterError(f"rank {rank} out of range for length {n}")

    lo = 0
    hi = n - 1
    while True:
        if lo == hi:
            return values[lo]
        pivot_index = rng.randint(lo, hi) if rng is not None else (lo + hi) // 2
        pivot = values[pivot_index]
        # Three-way (Dutch national flag) partition: handles heavy ties,
        # which counter multisets have in abundance after unit streams.
        lt = lo
        gt = hi
        i = lo
        while i <= gt:
            v = values[i]
            if v < pivot:
                values[lt], values[i] = values[i], values[lt]
                lt += 1
                i += 1
            elif v > pivot:
                values[gt], values[i] = values[i], values[gt]
                gt -= 1
            else:
                i += 1
        if rank < lt:
            hi = lt - 1
        elif rank > gt:
            lo = gt + 1
        else:
            return pivot


def kth_smallest(
    values: MutableSequence[float],
    k: int,
    rng: Optional[Xoroshiro128PlusPlus] = None,
) -> float:
    """Return the k-th smallest element (1-based), reordering in place."""
    return quickselect(values, k - 1, rng)


def kth_largest(
    values: MutableSequence[float],
    k: int,
    rng: Optional[Xoroshiro128PlusPlus] = None,
) -> float:
    """Return the k-th largest element (1-based), reordering in place.

    This is the order statistic Algorithm 3's ``DecrementCounters()``
    needs: ``c_{k*}``, the k*-th largest counter value counting
    multiplicity.
    """
    return quickselect(values, len(values) - k, rng)
