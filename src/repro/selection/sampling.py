"""Sampled quantiles of counter multisets.

SMED (Algorithm 4) replaces the exact k*-th largest counter with the
median of ``ell`` counters sampled (with replacement) from the table;
Section 4.4 generalizes the median to an arbitrary sample quantile, which
is the knob the Figure-3 tradeoff sweeps.  Section 2.3.2 fixes
``ell = 1024`` in the production implementation.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.selection.quickselect import quickselect

#: The sample size the paper's implementation uses (Section 2.3.2).
DEFAULT_SAMPLE_SIZE = 1024


def sample_quantile(
    sample: Sequence[float],
    quantile: float,
    rng: Xoroshiro128PlusPlus | None = None,
    selector: str = "auto",
) -> float:
    """Return the ``quantile``-th order statistic of ``sample``.

    ``quantile = 0.0`` is the sample minimum (SMIN), ``0.5`` the sample
    median (SMED), ``1.0`` the maximum.  The rank convention matches the
    paper's "q-th quantile of the sample": rank ``floor(q * (n - 1))``.

    ``selector`` picks how the order statistic is found:

    * ``"auto"`` (default) — ``min``/``max`` for the extreme quantiles and
      a full sort otherwise.  The paper's implementation uses Quickselect
      here, which is the right call in Java/C++; under CPython, ``min``
      and ``sorted`` are C-coded and beat a Python-level Quickselect by
      an order of magnitude at the paper's ℓ = 1024, so this is the
      platform-appropriate equivalent of the same design decision.
    * ``"quickselect"`` — Hoare's FIND, for op-count-faithful runs (the
      backend ablation benchmark compares both).
    """
    if not sample:
        raise InvalidParameterError("cannot take a quantile of an empty sample")
    if not 0.0 <= quantile <= 1.0:
        raise InvalidParameterError(f"quantile must be in [0, 1], got {quantile}")
    if selector == "quickselect":
        work = list(sample)
        rank = int(quantile * (len(work) - 1))
        return quickselect(work, rank, rng)
    if selector != "auto":
        raise InvalidParameterError(f"unknown selector {selector!r}")
    if quantile == 0.0:
        return min(sample)
    if quantile == 1.0:
        return max(sample)
    rank = int(quantile * (len(sample) - 1))
    return sorted(sample)[rank]


def sampled_counter_quantile(
    values: Sequence[float],
    quantile: float,
    sample_size: int,
    rng: Xoroshiro128PlusPlus,
) -> float:
    """Sample ``sample_size`` counters with replacement; return their quantile.

    ``values`` is the multiset of live counter values.  When the multiset
    is no larger than the sample size we use it whole — the quantile is
    then exact, which is both cheaper and strictly more accurate.
    """
    if sample_size <= 0:
        raise InvalidParameterError(f"sample_size must be positive, got {sample_size}")
    n = len(values)
    if n == 0:
        raise InvalidParameterError("cannot sample from an empty counter set")
    if n <= sample_size:
        return sample_quantile(values, quantile, rng)
    sample = [values[rng.randrange(n)] for _ in range(sample_size)]
    return sample_quantile(sample, quantile, rng)
