"""Order statistics: quickselect and sampled quantiles.

The paper uses Hoare's FIND (quickselect, [Hoa61]) in three places: the
MED algorithm's exact k*-th largest counter (Algorithm 3), the sample
median inside SMED's ``DecrementCounters()`` (Algorithm 4), and the
quickselect-based variant of the prior merge procedure (Section 3.1).
"""

from repro.selection.quickselect import kth_largest, kth_smallest, quickselect
from repro.selection.sampling import sample_quantile, sampled_counter_quantile

__all__ = [
    "quickselect",
    "kth_smallest",
    "kth_largest",
    "sample_quantile",
    "sampled_counter_quantile",
]
