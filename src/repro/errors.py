"""Exception types raised by the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` and friends)
propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its documented domain.

    Raised, for example, for a non-positive number of counters, a decrement
    quantile outside ``[0, 1]``, or a non-positive stream weight.
    """


class InvalidUpdateError(ReproError, ValueError):
    """A stream update is malformed (e.g. a non-positive weight)."""


class TableFullError(ReproError, RuntimeError):
    """An insert was attempted on a counter table that is at capacity.

    The counter-based algorithms in this library never trigger this error
    themselves: they purge before inserting.  Seeing it indicates misuse of
    the low-level table API.
    """


class SerializationError(ReproError, ValueError):
    """A byte blob could not be decoded into a sketch."""


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be merged (e.g. mismatched item encodings)."""


class ServiceClosedError(ReproError, RuntimeError):
    """An ingest-service operation was attempted on a stopped pipeline,
    or recovery was requested from a directory holding no checkpoint."""


class ReadOnlyReplicaError(ServiceClosedError):
    """A write was attempted on a pipeline serving as a read replica.

    Followers apply the leader's replicated frames only; direct writes
    would fork the replica's state from the leader's.  Promotion
    (:meth:`~repro.service.pipeline.IngestPipeline.promote`) lifts the
    restriction.
    """


class ServiceUnavailableError(ServiceClosedError):
    """No live leader could be reached before the client's deadline.

    Raised by :class:`~repro.service.client.ReconnectingServiceClient`
    and :class:`~repro.service.replication.FollowerService` when their
    jittered retry loops exhaust the configured overall deadline — the
    whole replica set is down or unreachable, not just one node.  It
    subclasses :class:`ServiceClosedError` so existing handlers keep
    working; catch it specifically to distinguish "cluster gone" from
    "this connection died".
    """


class UsageError(ReproError, ValueError):
    """Command-line flags were combined in a way that has no meaning.

    Raised (and reported as exit status 2) instead of silently ignoring
    one of the flags — e.g. ``--follow`` with ``--workers``: a read
    replica applies the leader's frames in one process, so multi-worker
    mode cannot apply to it.
    """


class ClusterError(ReproError, RuntimeError):
    """A multi-process cluster operation failed.

    Raised when a worker process dies (or is killed) while the acceptor
    is waiting on it, when a frame is routed to an unknown tenant, or
    when the pool is driven after :meth:`~repro.service.cluster.
    WorkerPool.stop`.  Restarting the pool over the same data directory
    recovers every tenant from its own WAL/snapshot directory.
    """


class ReplicationError(ReproError, RuntimeError):
    """A replication-stream frame could not be read or applied.

    Raised for corrupt frame tags, failed frame CRCs, oversized length
    prefixes, and sequence gaps.  The follower treats it as a dropped
    connection: close, reconnect, and re-request from the last applied
    sequence — never apply a suspect frame.
    """
