"""Exception types raised by the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` and friends)
propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its documented domain.

    Raised, for example, for a non-positive number of counters, a decrement
    quantile outside ``[0, 1]``, or a non-positive stream weight.
    """


class InvalidUpdateError(ReproError, ValueError):
    """A stream update is malformed (e.g. a non-positive weight)."""


class TableFullError(ReproError, RuntimeError):
    """An insert was attempted on a counter table that is at capacity.

    The counter-based algorithms in this library never trigger this error
    themselves: they purge before inserting.  Seeing it indicates misuse of
    the low-level table API.
    """


class SerializationError(ReproError, ValueError):
    """A byte blob could not be decoded into a sketch."""


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be merged (e.g. mismatched item encodings)."""


class ServiceClosedError(ReproError, RuntimeError):
    """An ingest-service operation was attempted on a stopped pipeline,
    or recovery was requested from a directory holding no checkpoint."""


class ReadOnlyReplicaError(ServiceClosedError):
    """A write was attempted on a pipeline serving as a read replica.

    Followers apply the leader's replicated frames only; direct writes
    would fork the replica's state from the leader's.  Promotion
    (:meth:`~repro.service.pipeline.IngestPipeline.promote`) lifts the
    restriction.
    """


class ReplicationError(ReproError, RuntimeError):
    """A replication-stream frame could not be read or applied.

    Raised for corrupt frame tags, failed frame CRCs, oversized length
    prefixes, and sequence gaps.  The follower treats it as a dropped
    connection: close, reconnect, and re-request from the last applied
    sequence — never apply a suspect frame.
    """
