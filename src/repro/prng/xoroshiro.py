"""xoroshiro128++ — the workhorse generator for all randomized hot paths.

Implemented from the reference description of Blackman and Vigna
("Scrambled linear pseudorandom number generators", 2019).  State is two
64-bit words, seeded through SplitMix64 so that any Python int is an
acceptable seed (including 0, which would be a degenerate raw state).

Beyond raw 64-bit words the class offers the small set of derived draws
the library needs: floats in ``[0, 1)``, unbiased bounded integers,
shuffles, and sampling without replacement.  Keeping these here (rather
than using :mod:`random`) makes every sketch reproducible from its seed.
"""

from __future__ import annotations

from typing import Iterable, MutableSequence, Sequence, TypeVar

from repro.errors import InvalidParameterError
from repro.prng.splitmix import splitmix64

_MASK64 = (1 << 64) - 1
_T = TypeVar("_T")


def _rotl(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & _MASK64


class Xoroshiro128PlusPlus:
    """A seedable xoroshiro128++ generator.

    >>> rng = Xoroshiro128PlusPlus(42)
    >>> rng2 = Xoroshiro128PlusPlus(42)
    >>> [rng.randrange(100) for _ in range(3)] == [rng2.randrange(100) for _ in range(3)]
    True
    """

    __slots__ = ("_s0", "_s1")

    def __init__(self, seed: int) -> None:
        state = seed & _MASK64
        state, s0 = splitmix64(state)
        _, s1 = splitmix64(state)
        # A xoroshiro state of (0, 0) is absorbing; SplitMix64 cannot emit
        # two zero words from distinct states, so this cannot occur, but we
        # keep the guard for clarity and safety against future edits.
        if s0 == 0 and s1 == 0:  # pragma: no cover - unreachable by design
            s1 = 1
        self._s0 = s0
        self._s1 = s1

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        s0 = self._s0
        s1 = self._s1
        result = (_rotl((s0 + s1) & _MASK64, 17) + s0) & _MASK64
        s1 ^= s0
        self._s0 = _rotl(s0, 49) ^ s1 ^ ((s1 << 21) & _MASK64)
        self._s1 = _rotl(s1, 28)
        return result

    def random(self) -> float:
        """Return a float uniform on ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randrange(self, n: int) -> int:
        """Return an unbiased integer uniform on ``[0, n)``.

        Uses rejection sampling on the top of the 64-bit range, so every
        residue is exactly equally likely.
        """
        if n <= 0:
            raise InvalidParameterError(f"randrange bound must be positive, got {n}")
        # Largest multiple of n that fits in 64 bits; reject draws above it.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % n)
        while True:
            draw = self.next_u64()
            if draw < limit:
                return draw % n

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniform on the inclusive range ``[low, high]``."""
        if high < low:
            raise InvalidParameterError(f"empty range [{low}, {high}]")
        return low + self.randrange(high - low + 1)

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniform on ``[low, high)``."""
        return low + (high - low) * self.random()

    def geometric(self, p: float) -> int:
        """Return a geometric draw: number of Bernoulli(p) trials to success.

        Support is ``{1, 2, ...}``.  Uses the standard inversion
        ``ceil(log(U) / log(1 - p))`` which is O(1) regardless of ``1/p``.
        """
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"geometric p must be in (0, 1], got {p}")
        if p == 1.0:
            return 1
        import math

        u = 1.0 - self.random()  # in (0, 1]
        return max(1, math.ceil(math.log(u) / math.log(1.0 - p)))

    def shuffle(self, seq: MutableSequence[_T]) -> None:
        """Fisher-Yates shuffle of ``seq`` in place."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def shuffled(self, items: Iterable[_T]) -> list[_T]:
        """Return a new list with the items of ``items`` in random order."""
        out = list(items)
        self.shuffle(out)
        return out

    def sample_indices(self, population: int, count: int) -> list[int]:
        """Sample ``count`` distinct indices from ``range(population)``.

        Uses a partial Fisher-Yates over an index dict so the cost is
        O(count) rather than O(population).
        """
        if count < 0 or count > population:
            raise InvalidParameterError(
                f"cannot sample {count} distinct indices from {population}"
            )
        swapped: dict[int, int] = {}
        result = []
        for i in range(count):
            j = self.randint(i, population - 1)
            value_j = swapped.get(j, j)
            value_i = swapped.get(i, i)
            swapped[j] = value_i
            result.append(value_j)
        return result

    def choices(self, seq: Sequence[_T], count: int) -> list[_T]:
        """Sample ``count`` elements from ``seq`` *with* replacement."""
        if not seq:
            raise InvalidParameterError("cannot choose from an empty sequence")
        return [seq[self.randrange(len(seq))] for _ in range(count)]

    def getstate(self) -> tuple[int, int]:
        """Return the raw generator state (for checkpointing)."""
        return (self._s0, self._s1)

    def setstate(self, state: tuple[int, int]) -> None:
        """Restore a state captured by :meth:`getstate`."""
        s0, s1 = state
        if s0 == 0 and s1 == 0:
            raise InvalidParameterError("the all-zero state is invalid")
        self._s0 = s0 & _MASK64
        self._s1 = s1 & _MASK64
