"""Deterministic, seedable pseudo-random number generation.

The randomized pieces of the paper's algorithm — counter sampling inside
``DecrementCounters()`` (Algorithm 4), quickselect pivots, and the
random-order merge iteration of Section 3.2 — all draw from the generators
in this subpackage rather than :mod:`random`, so that a sketch built twice
from the same seed is bit-identical.  Both generators are implemented from
scratch:

* :func:`splitmix64` / :class:`SplitMix64` — the seeding and mixing
  generator of Steele, Lea and Flood.
* :class:`Xoroshiro128PlusPlus` — the general-purpose generator used in
  all hot paths.
"""

from repro.prng.splitmix import SplitMix64, splitmix64
from repro.prng.xoroshiro import Xoroshiro128PlusPlus

__all__ = ["SplitMix64", "splitmix64", "Xoroshiro128PlusPlus"]
