"""SplitMix64 — a tiny, statistically solid 64-bit generator.

Used here mainly to expand a user seed into the larger state of
:class:`repro.prng.xoroshiro.Xoroshiro128PlusPlus` (the construction its
authors recommend) and as a stand-alone mixer in hash seeding.

Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
generators", OOPSLA 2014.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15  # 2^64 / golden ratio


def splitmix64(state: int) -> tuple[int, int]:
    """Advance a SplitMix64 ``state`` and return ``(new_state, output)``.

    The functional form is convenient for one-shot seed expansion::

        state, word1 = splitmix64(seed)
        state, word2 = splitmix64(state)
    """
    state = (state + _GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


class SplitMix64:
    """Stateful wrapper around :func:`splitmix64`.

    >>> g = SplitMix64(0)
    >>> hex(g.next_u64())
    '0xe220a8397b1dcdaf'
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit output word."""
        self._state, out = splitmix64(self._state)
        return out
