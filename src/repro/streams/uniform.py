"""Uniform (non-skewed) weighted streams.

The flattest workload shape: items uniform over the universe, weights
uniform on a range.  No heavy hitters exist, so counter algorithms churn
maximally — the complementary stress case to Zipfian skew in the bound
checks and ablations.

Each generator has an array-batch companion (``*_batches``) yielding
``(items, weights)`` NumPy pairs for the batched ingestion path; the
batched form emits exactly the same updates as its per-item sibling.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.transforms import DEFAULT_BATCH_SIZE, as_batches
from repro.types import StreamUpdate


def uniform_weighted_stream(
    num_updates: int,
    universe: int,
    seed: int = 0,
    weight_low: float = 1.0,
    weight_high: float = 10_000.0,
) -> list[StreamUpdate]:
    """Materialized stream of uniform items with uniform real weights."""
    if num_updates < 0:
        raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
    if universe <= 0:
        raise InvalidParameterError(f"universe must be positive, got {universe}")
    if not 0 < weight_low <= weight_high:
        raise InvalidParameterError(
            f"need 0 < weight_low <= weight_high, got [{weight_low}, {weight_high}]"
        )
    rng = Xoroshiro128PlusPlus(seed)
    out = []
    for _ in range(num_updates):
        item = rng.randrange(universe)
        weight = rng.uniform(weight_low, weight_high)
        out.append(StreamUpdate(item, weight))
    return out


def uniform_weighted_batches(
    num_updates: int,
    universe: int,
    seed: int = 0,
    weight_low: float = 1.0,
    weight_high: float = 10_000.0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """:func:`uniform_weighted_stream` as ``(items, weights)`` array batches.

    Chunks the per-item generator, so the updates (and the PRNG draws
    behind them) are identical to the scalar stream for any batch size.
    """
    return as_batches(
        uniform_weighted_stream(num_updates, universe, seed, weight_low, weight_high),
        batch_size,
    )


def round_robin_stream(num_updates: int, universe: int) -> Iterator[StreamUpdate]:
    """Deterministic cycling through the universe with unit weights.

    Every item ends with (almost) identical frequency — the exact
    worst case for frequency separation, used in edge-case tests.
    """
    if num_updates < 0:
        raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
    if universe <= 0:
        raise InvalidParameterError(f"universe must be positive, got {universe}")
    for index in range(num_updates):
        yield StreamUpdate(index % universe, 1.0)


def round_robin_batches(
    num_updates: int, universe: int, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """:func:`round_robin_stream` as array batches, generated vectorized."""
    if num_updates < 0:
        raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
    if universe <= 0:
        raise InvalidParameterError(f"universe must be positive, got {universe}")
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    start = 0
    while start < num_updates:
        count = min(batch_size, num_updates - start)
        items = (np.arange(start, start + count, dtype=np.uint64)
                 % np.uint64(universe))
        yield items, np.ones(count, dtype=np.float64)
        start += count
