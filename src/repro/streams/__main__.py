"""Module entry point for ``python -m repro.streams``."""

from repro.streams.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
