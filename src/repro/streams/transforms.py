"""Stream combinators: slicing, concatenation, partitioning, batching.

Partitioning feeds the mergeability experiments (Section 3): a dataset
split across machines or time windows, summarized per partition, then
merged via an arbitrary aggregation tree.

The batch adapters translate between the two stream representations the
library supports: per-item iterables of :class:`~repro.types.
StreamUpdate` and array *batches* — ``(items, weights)`` pairs of
parallel NumPy arrays consumed by ``update_batch``.  :func:`as_batches`
chunks any per-item stream into batches (same updates, same order);
:func:`flatten_batches` is its inverse.  Natively array-producing
generators (:class:`~repro.streams.zipf.ZipfianStream`,
:class:`~repro.streams.caida.SyntheticPacketTrace`) skip the adapter and
yield batches directly.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.hashing.mixers import hash_u64, item_to_u64
from repro.types import StreamUpdate

#: Default updates per array batch for the batching adapters.
DEFAULT_BATCH_SIZE = 65536


def take(updates: Iterable[StreamUpdate], count: int) -> Iterator[StreamUpdate]:
    """Yield at most the first ``count`` updates."""
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    return itertools.islice(iter(updates), count)


def concat(*streams: Iterable[StreamUpdate]) -> Iterator[StreamUpdate]:
    """Concatenate streams (the paper's ``sigma_1 ∘ sigma_2``)."""
    return itertools.chain(*streams)


def materialize(updates: Iterable[StreamUpdate]) -> list[StreamUpdate]:
    """Collect a stream into a list (for replaying it across algorithms)."""
    return [StreamUpdate(item, weight) for item, weight in updates]


def partition_round_robin(
    updates: Iterable[StreamUpdate], parts: int
) -> list[list[StreamUpdate]]:
    """Deal updates into ``parts`` lists in arrival order.

    Models temporal sharding: every partition sees a uniform sample of
    the stream's time axis.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    out: list[list[StreamUpdate]] = [[] for _ in range(parts)]
    for index, update in enumerate(updates):
        out[index % parts].append(StreamUpdate(update[0], update[1]))
    return out


def partition_hash(
    updates: Iterable[StreamUpdate], parts: int, seed: int = 0
) -> list[list[StreamUpdate]]:
    """Shard updates by item hash, like a distributed key-partitioned ingest.

    All of an item's weight lands in one partition, so per-partition
    summaries see the full per-key truth — the other extreme from
    round-robin.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    out: list[list[StreamUpdate]] = [[] for _ in range(parts)]
    for update in updates:
        shard = hash_u64(item_to_u64(update[0]), seed) % parts
        out[shard].append(StreamUpdate(update[0], update[1]))
    return out


def as_batches(
    updates: Iterable[StreamUpdate],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Chunk a per-item stream into ``(items, weights)`` array batches.

    Feeding the produced batches through ``update_batch`` processes
    exactly the same weighted updates in exactly the same order as
    feeding the original iterable through ``update``; only the packaging
    changes.  The final batch is short when the stream length is not a
    multiple of ``batch_size``.
    """
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    iterator = iter(updates)
    while True:
        chunk = list(itertools.islice(iterator, batch_size))
        if not chunk:
            return
        items = np.array([update[0] for update in chunk], dtype=np.uint64)
        weights = np.array([update[1] for update in chunk], dtype=np.float64)
        yield items, weights


def flatten_batches(
    batches: Iterable[tuple[np.ndarray, np.ndarray]],
) -> Iterator[StreamUpdate]:
    """The inverse of :func:`as_batches`: array batches to per-item updates."""
    for items, weights in batches:
        for item, weight in zip(items.tolist(), weights.tolist()):
            yield StreamUpdate(int(item), float(weight))


def take_batches(
    batches: Iterable[tuple[np.ndarray, np.ndarray]], count: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield batches covering at most the first ``count`` *updates*.

    The final batch is trimmed so exactly ``count`` updates pass through
    — the batch-level analogue of :func:`take`.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    remaining = count
    for items, weights in batches:
        if remaining <= 0:
            return
        if len(items) > remaining:
            yield items[:remaining], weights[:remaining]
            return
        yield items, weights
        remaining -= len(items)


def concat_batches(
    *batch_streams: Iterable[tuple[np.ndarray, np.ndarray]],
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Concatenate batch streams (the batch-level ``sigma_1 ∘ sigma_2``)."""
    return itertools.chain(*batch_streams)


def split_chunks(
    updates: Sequence[StreamUpdate], parts: int
) -> list[Sequence[StreamUpdate]]:
    """Split a materialized stream into ``parts`` contiguous chunks.

    Models the paper's one-summary-per-hour scenario (Section 3): each
    chunk is a contiguous time slice.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    n = len(updates)
    base = n // parts
    extra = n % parts
    chunks = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        chunks.append(updates[start : start + size])
        start += size
    return chunks
