"""Stream combinators: slicing, concatenation, and partitioning.

Partitioning feeds the mergeability experiments (Section 3): a dataset
split across machines or time windows, summarized per partition, then
merged via an arbitrary aggregation tree.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidParameterError
from repro.hashing.mixers import hash_u64, item_to_u64
from repro.types import StreamUpdate


def take(updates: Iterable[StreamUpdate], count: int) -> Iterator[StreamUpdate]:
    """Yield at most the first ``count`` updates."""
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    return itertools.islice(iter(updates), count)


def concat(*streams: Iterable[StreamUpdate]) -> Iterator[StreamUpdate]:
    """Concatenate streams (the paper's ``sigma_1 ∘ sigma_2``)."""
    return itertools.chain(*streams)


def materialize(updates: Iterable[StreamUpdate]) -> list[StreamUpdate]:
    """Collect a stream into a list (for replaying it across algorithms)."""
    return [StreamUpdate(item, weight) for item, weight in updates]


def partition_round_robin(
    updates: Iterable[StreamUpdate], parts: int
) -> list[list[StreamUpdate]]:
    """Deal updates into ``parts`` lists in arrival order.

    Models temporal sharding: every partition sees a uniform sample of
    the stream's time axis.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    out: list[list[StreamUpdate]] = [[] for _ in range(parts)]
    for index, update in enumerate(updates):
        out[index % parts].append(StreamUpdate(update[0], update[1]))
    return out


def partition_hash(
    updates: Iterable[StreamUpdate], parts: int, seed: int = 0
) -> list[list[StreamUpdate]]:
    """Shard updates by item hash, like a distributed key-partitioned ingest.

    All of an item's weight lands in one partition, so per-partition
    summaries see the full per-key truth — the other extreme from
    round-robin.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    out: list[list[StreamUpdate]] = [[] for _ in range(parts)]
    for update in updates:
        shard = hash_u64(item_to_u64(update[0]), seed) % parts
        out[shard].append(StreamUpdate(update[0], update[1]))
    return out


def split_chunks(
    updates: Sequence[StreamUpdate], parts: int
) -> list[Sequence[StreamUpdate]]:
    """Split a materialized stream into ``parts`` contiguous chunks.

    Models the paper's one-summary-per-hour scenario (Section 3): each
    chunk is a contiguous time slice.
    """
    if parts <= 0:
        raise InvalidParameterError(f"parts must be positive, got {parts}")
    n = len(updates)
    base = n // parts
    extra = n % parts
    chunks = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        chunks.append(updates[start : start + size])
        start += size
    return chunks
