"""Workload generation, ground truth, and stream plumbing.

The paper evaluates on a CAIDA 2016 packet capture (items = source IPs,
weights = packet sizes in bits) and on synthetic Zipfian streams with
uniform random weights; it reports both behave "entirely similarly"
(Section 4.1).  We cannot ship CAIDA data, so :mod:`repro.streams.caida`
synthesizes a trace with the same statistical profile, and
:mod:`repro.streams.zipf` provides the synthetic distributions (including
the α = 1.05 / weights ~ U[1, 10000] configuration of the merge
experiment, Section 4.5).

:class:`ExactCounter` computes exact frequencies, residual tail weights
``N^res(j)``, and exact heavy-hitter sets — the ground truth every error
measurement compares against.

Every generator also speaks *array batches*: ``(items, weights)`` pairs
of parallel NumPy arrays for the batched ingestion path
(``update_batch``).  Natively vectorized sources expose ``batches()`` /
``*_batches`` generators; :func:`as_batches` and
:func:`flatten_batches` convert any stream between the two forms.
"""

from repro.streams.adversarial import (
    rbmc_killer_batches,
    rbmc_killer_stream,
    uniform_random_batches,
    uniform_random_stream,
)
from repro.streams.caida import SyntheticPacketTrace
from repro.streams.exact import ExactCounter
from repro.streams.model import as_updates
from repro.streams.transforms import (
    DEFAULT_BATCH_SIZE,
    as_batches,
    concat,
    concat_batches,
    flatten_batches,
    materialize,
    partition_hash,
    partition_round_robin,
    take,
    take_batches,
)
from repro.streams.uniform import (
    round_robin_batches,
    round_robin_stream,
    uniform_weighted_batches,
    uniform_weighted_stream,
)
from repro.streams.zipf import (
    RejectionInversionZipf,
    ZipfTableSampler,
    ZipfianStream,
)

__all__ = [
    "as_updates",
    "as_batches",
    "flatten_batches",
    "take_batches",
    "concat_batches",
    "DEFAULT_BATCH_SIZE",
    "ZipfianStream",
    "ZipfTableSampler",
    "RejectionInversionZipf",
    "SyntheticPacketTrace",
    "rbmc_killer_stream",
    "rbmc_killer_batches",
    "uniform_random_stream",
    "uniform_random_batches",
    "uniform_weighted_stream",
    "uniform_weighted_batches",
    "round_robin_stream",
    "round_robin_batches",
    "ExactCounter",
    "take",
    "concat",
    "materialize",
    "partition_round_robin",
    "partition_hash",
]
