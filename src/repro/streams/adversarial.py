"""Adversarial and degenerate streams used in tests and ablations.

The centerpiece is the RBMC-killer stream from Section 1.3.4 of the
paper: ``k`` huge distinct items followed by a long run of unit updates
to fresh items.  On it, RBMC performs a Θ(k) decrement pass on *every*
one of the unit updates, while SMED decrements at most once every ~k/3
updates — the constructed separation behind Theorem 3.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.prng import Xoroshiro128PlusPlus
from repro.streams.transforms import DEFAULT_BATCH_SIZE, as_batches
from repro.types import StreamUpdate


def rbmc_killer_stream(
    k: int,
    heavy_weight: float,
    num_unit_updates: int,
    id_offset: int = 0,
) -> Iterator[StreamUpdate]:
    """The worst case for Reduce-By-Min-Counter (paper Section 1.3.4).

    First ``k`` updates give distinct items an arbitrarily large weight
    ``heavy_weight`` (the paper's ``M``); the following
    ``num_unit_updates`` are unit updates to brand-new items.  Every unit
    update then finds a full table whose minimum counter is huge, forcing
    RBMC into a full Θ(k) decrement pass per update.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if heavy_weight <= 1:
        raise InvalidParameterError(
            f"heavy_weight must exceed 1 for the construction, got {heavy_weight}"
        )
    for i in range(k):
        yield StreamUpdate(id_offset + i, float(heavy_weight))
    for i in range(num_unit_updates):
        yield StreamUpdate(id_offset + k + i, 1.0)


def rbmc_killer_batches(
    k: int,
    heavy_weight: float,
    num_unit_updates: int,
    id_offset: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """:func:`rbmc_killer_stream` as array batches, generated vectorized.

    The construction is deterministic, so the batches carry exactly the
    updates of the per-item generator for any batch size.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if heavy_weight <= 1:
        raise InvalidParameterError(
            f"heavy_weight must exceed 1 for the construction, got {heavy_weight}"
        )
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    total = k + num_unit_updates
    start = 0
    while start < total:
        count = min(batch_size, total - start)
        items = np.arange(
            id_offset + start, id_offset + start + count, dtype=np.uint64
        )
        weights = np.where(
            np.arange(start, start + count) < k, float(heavy_weight), 1.0
        )
        yield items, weights
        start += count


def uniform_random_stream(
    num_updates: int,
    universe: int,
    seed: int = 0,
    max_weight: float = 1.0,
) -> Iterator[StreamUpdate]:
    """Items uniform over ``[0, universe)``; the flattest possible profile.

    With no skew, no item is a heavy hitter and counter algorithms churn
    constantly — a useful stress profile complementing Zipfian streams.
    Weights are uniform on ``[1, max_weight]`` (all 1.0 when
    ``max_weight == 1``).
    """
    if num_updates < 0:
        raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
    if universe <= 0:
        raise InvalidParameterError(f"universe must be positive, got {universe}")
    if max_weight < 1.0:
        raise InvalidParameterError(f"max_weight must be >= 1, got {max_weight}")
    rng = Xoroshiro128PlusPlus(seed)
    for _ in range(num_updates):
        item = rng.randrange(universe)
        weight = 1.0 if max_weight == 1.0 else rng.uniform(1.0, max_weight)
        yield StreamUpdate(item, weight)


def uniform_random_batches(
    num_updates: int,
    universe: int,
    seed: int = 0,
    max_weight: float = 1.0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """:func:`uniform_random_stream` as array batches (same PRNG draws)."""
    return as_batches(
        uniform_random_stream(num_updates, universe, seed, max_weight), batch_size
    )


def two_phase_stream(
    k: int,
    phase1_weight: float,
    phase2_items: int,
    phase2_weight: float,
    seed: int = 0,
) -> Iterator[StreamUpdate]:
    """Heavy prefix then a differently weighted suffix over fresh items.

    Generalizes the RBMC-killer: useful for exercising the decrement
    logic at weight-scale discontinuities (e.g. floats much smaller than
    live counters).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    rng = Xoroshiro128PlusPlus(seed)
    for i in range(k):
        yield StreamUpdate(i, float(phase1_weight))
    for i in range(phase2_items):
        # Random fresh items, weight jittered +/- 10% for realism.
        jitter = 0.9 + 0.2 * rng.random()
        yield StreamUpdate(k + i, float(phase2_weight) * jitter)
