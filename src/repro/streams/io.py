"""Reading and writing update streams on disk.

Two formats:

* **binary** — fixed 16-byte records ``<Qd`` (uint64 item, float64
  weight), the compact form for large generated traces;
* **csv** — ``item,weight`` text lines, for interchange and eyeballing.

Both round-trip exactly (weights are IEEE doubles end to end) and accept
``.gz`` paths transparently.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import InvalidUpdateError
from repro.types import StreamUpdate

_RECORD = struct.Struct("<Qd")


def _open(path: str | Path, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def write_binary_trace(path: str | Path, updates: Iterable[StreamUpdate]) -> int:
    """Write updates as fixed-width binary records; returns the count."""
    count = 0
    with _open(path, "wb") as fh:
        for item, weight in updates:
            fh.write(_RECORD.pack(item, weight))
            count += 1
    return count


def read_binary_trace(path: str | Path) -> Iterator[StreamUpdate]:
    """Stream updates back from :func:`write_binary_trace` output."""
    with _open(path, "rb") as fh:
        while True:
            blob = fh.read(_RECORD.size)
            if not blob:
                return
            if len(blob) != _RECORD.size:
                raise InvalidUpdateError(
                    f"truncated record ({len(blob)} bytes) at end of {path}"
                )
            item, weight = _RECORD.unpack(blob)
            yield StreamUpdate(item, weight)


def write_csv_trace(path: str | Path, updates: Iterable[StreamUpdate]) -> int:
    """Write updates as ``item,weight`` lines; returns the count."""
    count = 0
    with _open(path, "wt") as fh:
        fh.write("item,weight\n")
        for item, weight in updates:
            fh.write(f"{item},{weight!r}\n")
            count += 1
    return count


def read_csv_trace(path: str | Path) -> Iterator[StreamUpdate]:
    """Stream updates back from :func:`write_csv_trace` output."""
    with _open(path, "rt") as fh:
        header = fh.readline()
        if not header.startswith("item"):
            raise InvalidUpdateError(f"missing csv header in {path}")
        for line_number, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                item_text, weight_text = line.split(",")
                yield StreamUpdate(int(item_text), float(weight_text))
            except ValueError as exc:
                raise InvalidUpdateError(
                    f"bad record at {path}:{line_number}: {line!r}"
                ) from exc
