"""Exact ground truth: the trivial hash-table counter of Section 4.1.

``ExactCounter`` is the "trivial (exact) algorithm that keeps a hash
table storing an exact count for each unique" item — the reference every
error measurement in the experiments compares against.  It also computes
the residual tail weight ``N^res(j)`` appearing in all the paper's
theorems, exact (φ)-heavy-hitter sets, and empirical entropy.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.types import ItemId, StreamUpdate, Weight


class ExactCounter:
    """Exact frequency table over a stream of weighted updates."""

    __slots__ = ("_counts", "_total_weight", "_num_updates", "_sorted_cache")

    def __init__(self) -> None:
        self._counts: dict[ItemId, float] = {}
        self._total_weight = 0.0
        self._num_updates = 0
        self._sorted_cache: list[tuple[ItemId, float]] | None = None

    # -- ingestion -----------------------------------------------------------

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Add one weighted update."""
        if weight <= 0:
            raise InvalidUpdateError(f"weights must be positive, got {weight}")
        self._counts[item] = self._counts.get(item, 0.0) + weight
        self._total_weight += weight
        self._num_updates += 1
        self._sorted_cache = None

    def update_all(self, updates: Iterable[StreamUpdate]) -> None:
        """Consume a stream of updates."""
        counts = self._counts
        total = 0.0
        n = 0
        for item, weight in updates:
            if weight <= 0:
                raise InvalidUpdateError(f"weights must be positive, got {weight}")
            counts[item] = counts.get(item, 0.0) + weight
            total += weight
            n += 1
        self._total_weight += total
        self._num_updates += n
        self._sorted_cache = None

    def merge(self, other: "ExactCounter") -> "ExactCounter":
        """Fold another exact counter into this one; returns self."""
        counts = self._counts
        for item, weight in other._counts.items():
            counts[item] = counts.get(item, 0.0) + weight
        self._total_weight += other._total_weight
        self._num_updates += other._num_updates
        self._sorted_cache = None
        return self

    # -- queries -------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        """The weighted stream length ``N``."""
        return self._total_weight

    @property
    def num_updates(self) -> int:
        """The unweighted stream length ``n``."""
        return self._num_updates

    @property
    def num_items(self) -> int:
        """Number of distinct items observed."""
        return len(self._counts)

    def frequency(self, item: ItemId) -> float:
        """The exact frequency ``f(item)`` (0 for unseen items)."""
        return self._counts.get(item, 0.0)

    def __contains__(self, item: ItemId) -> bool:
        return item in self._counts

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over ``(item, frequency)`` pairs, unordered."""
        return iter(self._counts.items())

    def _sorted_desc(self) -> list[tuple[ItemId, float]]:
        if self._sorted_cache is None:
            self._sorted_cache = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return self._sorted_cache

    def top_k(self, k: int) -> list[tuple[ItemId, float]]:
        """The ``k`` most frequent items, ties broken by item id."""
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        return self._sorted_desc()[:k]

    def residual_weight(self, j: int) -> float:
        """``N^res(j)``: total weight minus the top-``j`` frequencies.

        This is the tail quantity in Lemma 2 and Theorems 2/4/5.
        """
        if j < 0:
            raise InvalidParameterError(f"j must be >= 0, got {j}")
        top = self._sorted_desc()[:j]
        return self._total_weight - sum(freq for _item, freq in top)

    def heavy_hitters(self, phi: float) -> dict[ItemId, float]:
        """Exact φ-heavy hitters: items with ``f(i) >= phi * N``."""
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self._total_weight
        return {i: f for i, f in self._counts.items() if f >= threshold}

    def entropy(self) -> float:
        """Empirical Shannon entropy (bits) of the frequency distribution.

        ``H = -sum (f_i/N) log2(f_i/N)`` — the quantity the streaming
        entropy extension estimates.
        """
        if self._total_weight <= 0:
            return 0.0
        n = self._total_weight
        return -sum(
            (f / n) * math.log2(f / n) for f in self._counts.values() if f > 0
        )

    def __len__(self) -> int:
        return len(self._counts)


def exact_counts(updates: Iterable[StreamUpdate]) -> ExactCounter:
    """Convenience: build an :class:`ExactCounter` over ``updates``."""
    counter = ExactCounter()
    counter.update_all(updates)
    return counter
