"""Trace generation from the command line.

``python -m repro.streams <kind> --out trace.bin`` writes a reproducible
workload to disk in the binary or CSV format of :mod:`repro.streams.io`,
so experiments can be pinned to a fixed input file and shared:

    python -m repro.streams caida --updates 1000000 --out trace.bin
    python -m repro.streams zipf --updates 500000 --alpha 1.05 \\
        --weight-low 1 --weight-high 10000 --out trace.csv.gz
"""

from __future__ import annotations

import argparse
import sys

from repro.streams.caida import SyntheticPacketTrace
from repro.streams.io import write_binary_trace, write_csv_trace
from repro.streams.zipf import ZipfianStream


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.streams",
        description="Generate reproducible workload traces.",
    )
    parser.add_argument("kind", choices=("caida", "zipf"), help="workload family")
    parser.add_argument("--updates", type=int, default=100_000, help="stream length n")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", required=True, help="output path (.bin/.csv, .gz ok)")
    parser.add_argument(
        "--unique-sources", type=int, default=None,
        help="caida: distinct source addresses (default n/72)",
    )
    parser.add_argument("--alpha", type=float, default=1.1, help="zipf skew")
    parser.add_argument(
        "--universe", type=int, default=100_000, help="zipf: number of distinct ranks"
    )
    parser.add_argument("--weight-low", type=float, default=None)
    parser.add_argument("--weight-high", type=float, default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.kind == "caida":
        stream = SyntheticPacketTrace(
            args.updates, unique_sources=args.unique_sources, seed=args.seed
        )
    else:
        stream = ZipfianStream(
            args.updates,
            universe=args.universe,
            alpha=args.alpha,
            seed=args.seed,
            weight_low=args.weight_low,
            weight_high=args.weight_high,
        )
    writer = write_csv_trace if ".csv" in args.out else write_binary_trace
    count = writer(args.out, stream)
    print(f"wrote {count:,} updates to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
