"""Normalizing helpers for the stream-update model of Section 1.2."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InvalidUpdateError
from repro.types import StreamUpdate


def as_updates(raw: Iterable) -> Iterator[StreamUpdate]:
    """Normalize an iterable into :class:`~repro.types.StreamUpdate` values.

    Accepts plain item ids (unit weight), ``(item, weight)`` tuples, and
    ready-made ``StreamUpdate`` instances.  Weights must be strictly
    positive, matching the paper's model where ``delta_j > 0``.
    """
    for entry in raw:
        if isinstance(entry, StreamUpdate):
            update = entry
        elif isinstance(entry, tuple):
            if len(entry) != 2:
                raise InvalidUpdateError(f"expected (item, weight), got {entry!r}")
            update = StreamUpdate(entry[0], float(entry[1]))
        else:
            update = StreamUpdate(entry, 1.0)
        if update.weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {update.weight} for item {update.item}"
            )
        yield update
