"""Normalizing helpers for the stream-update model of Section 1.2.

Two entry forms are normalized here: per-item iterables (via
:func:`as_updates`) and array batches (via :func:`as_batch`) — the
single validation path every ``update_batch`` implementation shares.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import InvalidUpdateError
from repro.hashing.mixers import items_to_u64_array
from repro.types import StreamUpdate


def as_batch(
    items: object, weights: object = None
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce one array batch to ``(uint64, float64)`` form.

    ``items`` may be any 1-D integer array or sequence (converted
    losslessly — see :func:`repro.hashing.mixers.items_to_u64_array`);
    ``weights`` must align element-wise and be strictly positive, and
    defaults to unit weights.  Raises
    :class:`~repro.errors.InvalidUpdateError` before any caller state
    can change, so a rejected batch is always a no-op.
    """
    items = items_to_u64_array(items)
    if items.ndim != 1:
        raise InvalidUpdateError(
            f"items must be a 1-D array, got shape {items.shape}"
        )
    n = items.shape[0]
    if weights is None:
        return items, np.ones(n, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != items.shape:
        raise InvalidUpdateError(
            f"items and weights must align, got {items.shape} vs {weights.shape}"
        )
    if n and not (weights > 0).all():
        bad = int(np.flatnonzero(weights <= 0)[0])
        raise InvalidUpdateError(
            f"update weights must be positive, got {weights[bad]} "
            f"for item {int(items[bad])}"
        )
    return items, weights


def as_updates(raw: Iterable) -> Iterator[StreamUpdate]:
    """Normalize an iterable into :class:`~repro.types.StreamUpdate` values.

    Accepts plain item ids (unit weight), ``(item, weight)`` tuples, and
    ready-made ``StreamUpdate`` instances.  Weights must be strictly
    positive, matching the paper's model where ``delta_j > 0``.
    """
    for entry in raw:
        if isinstance(entry, StreamUpdate):
            update = entry
        elif isinstance(entry, tuple):
            if len(entry) != 2:
                raise InvalidUpdateError(f"expected (item, weight), got {entry!r}")
            update = StreamUpdate(entry[0], float(entry[1]))
        else:
            update = StreamUpdate(entry, 1.0)
        if update.weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {update.weight} for item {update.item}"
            )
        yield update
