"""Synthetic stand-in for the CAIDA 2016 packet-capture workload.

The paper's main experiments (Section 4.1) preprocess four randomly
chosen CAIDA Anonymized Internet Traces 2016 capture files into updates
``(source_ip, packet_size_in_bits)`` and concatenate them:
``n ~ 126.2e6`` updates, ``N ~ 72.2e9`` total weight, ``~1.75e6`` unique
source addresses out of a 2^32 universe.

We cannot redistribute CAIDA data, so :class:`SyntheticPacketTrace`
generates a trace with the same statistical profile:

* source-IP popularity follows a Zipf-like law (backbone flow-size
  distributions are classically heavy-tailed), with the skew ``alpha``
  configurable;
* each of the four "capture files" is an independently seeded segment
  with its own address bias, so concatenation produces the mild
  non-stationarity of real multi-file traces;
* packet sizes are drawn from a small-packet-dominated mixture and
  expressed in bits; the default mixture reproduces the paper's mean
  weight-per-update of ``N/n ~ 572`` (dominant 40- and 64-byte control
  packets plus a tail of 576/1500-byte data packets, with the mixture
  calibrated to the ratio implied by the paper's reported n and N);
* identifiers are 32-bit values embedded in the 64-bit id space, like
  the paper's ``long long``-held IPv4 addresses.

What the frequent-items algorithms observe is only the pair
``(identifier, positive weight)``; the paper itself notes (Section 4.1)
that Zipfian synthetic data produced "entirely similar" results to the
packet trace, so this substitution preserves the compared behaviours.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.types import StreamUpdate

#: Packet sizes in bytes and their mixture probabilities.  Calibrated so
#: the mean update weight in bits matches the paper's N/n ~ 572 (i.e.
#: ~71.5 bytes/packet — a strongly control-packet-dominated mixture):
#: 0.86*40 + 0.105*64 + 0.025*576 + 0.01*1500 = 70.5 bytes = 564 bits.
_PACKET_SIZES_BYTES = np.array([40, 64, 576, 1500], dtype=np.float64)
_PACKET_PROBS = np.array([0.86, 0.105, 0.025, 0.01], dtype=np.float64)


class SyntheticPacketTrace:
    """A reproducible packet-header stream: ``(source_ip, bits)`` updates.

    Parameters
    ----------
    num_updates:
        Total stream length across all segments (the paper's n).
    unique_sources:
        Approximate distinct source-address count.  The paper's trace has
        one unique source per ~72 updates; the default keeps that ratio.
    alpha:
        Zipf skew of source popularity (1.1 by default — heavy-tailed but
        not extreme, typical of backbone source distributions).
    segments:
        Number of independently seeded capture files to emulate (4 in the
        paper).
    seed:
        Master seed; every derived generator is seeded from it.
    """

    def __init__(
        self,
        num_updates: int,
        unique_sources: int | None = None,
        alpha: float = 1.1,
        segments: int = 4,
        seed: int = 0,
        batch_size: int = 65536,
    ) -> None:
        if num_updates < 0:
            raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
        if segments <= 0:
            raise InvalidParameterError(f"segments must be positive, got {segments}")
        if unique_sources is None:
            unique_sources = max(1024, num_updates // 72)
        if unique_sources <= 0:
            raise InvalidParameterError(
                f"unique_sources must be positive, got {unique_sources}"
            )
        self.num_updates = num_updates
        self.unique_sources = unique_sources
        self.alpha = alpha
        self.segments = segments
        self.seed = seed
        self.batch_size = batch_size

    def __len__(self) -> int:
        return self.num_updates

    def expected_mean_weight(self) -> float:
        """Mean packet size in bits under the size mixture."""
        return float(np.dot(_PACKET_SIZES_BYTES, _PACKET_PROBS) * 8.0)

    def _segment_address_pool(self, segment: int) -> np.ndarray:
        """The segment's source-address pool, as scrambled 32-bit ids.

        Each segment shuffles the shared address pool differently, so the
        popular addresses overlap across segments (as in real traces,
        where big talkers persist) while rank order varies.
        """
        pool_rng = np.random.Generator(
            np.random.PCG64(self.seed * 1_000_003 + 17)
        )
        # One shared pool of 32-bit addresses for the whole trace.
        addresses = pool_rng.integers(0, 1 << 32, size=self.unique_sources, dtype=np.uint64)
        segment_rng = np.random.Generator(
            np.random.PCG64(self.seed * 1_000_003 + 1009 * (segment + 1))
        )
        # Mild per-segment perturbation of popularity order: swap a random
        # 10% of ranks.  Heavy ranks mostly persist across segments.
        perm = np.arange(self.unique_sources)
        swaps = max(1, self.unique_sources // 10)
        idx_a = segment_rng.integers(0, self.unique_sources, size=swaps)
        idx_b = segment_rng.integers(0, self.unique_sources, size=swaps)
        perm[idx_a], perm[idx_b] = perm[idx_b].copy(), perm[idx_a].copy()
        return addresses[perm]

    def batches(
        self, batch_size: int | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(source_ids, packet_bits)`` numpy array pairs.

        ``batch_size`` overrides the constructor's batch size for this
        traversal.  Note the batch size participates in the trace's
        identity (item and size draws interleave per batch), so compare
        runs at a fixed batch size; per-item iteration via ``__iter__``
        always uses the constructor's.
        """
        if batch_size is None:
            batch_size = self.batch_size
        if batch_size <= 0:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        # Zipf CDF over source ranks, shared across segments.
        ranks = np.arange(1, self.unique_sources + 1, dtype=np.float64)
        cdf = np.cumsum(ranks ** (-self.alpha))
        cdf /= cdf[-1]

        per_segment = [self.num_updates // self.segments] * self.segments
        per_segment[-1] += self.num_updates - sum(per_segment)

        for segment in range(self.segments):
            addresses = self._segment_address_pool(segment)
            draw_rng = np.random.Generator(
                np.random.PCG64(self.seed * 7_368_787 + segment)
            )
            remaining = per_segment[segment]
            while remaining > 0:
                count = min(batch_size, remaining)
                rank_draws = np.searchsorted(cdf, draw_rng.random(count), side="left")
                items = addresses[rank_draws]
                sizes = draw_rng.choice(
                    _PACKET_SIZES_BYTES, size=count, p=_PACKET_PROBS
                )
                yield items, sizes * 8.0  # bytes -> bits
                remaining -= count

    def __iter__(self) -> Iterator[StreamUpdate]:
        for items, weights in self.batches():
            for item, weight in zip(items.tolist(), weights.tolist()):
                yield StreamUpdate(int(item), float(weight))
