"""Zipfian item distributions.

Two samplers, both seedable and deterministic:

* :class:`ZipfTableSampler` — exact inverse-CDF sampling for universes
  small enough to hold a cumulative table (O(m) memory, O(log m) per
  draw via binary search, vectorized with numpy).
* :class:`RejectionInversionZipf` — the rejection-inversion method of
  Hörmann and Derflinger ("Rejection-inversion to generate variates from
  monotone discrete distributions", 1996), O(1) memory and O(1) expected
  time per draw, usable for universes up to 2**63.  This is the sampler
  Apache Commons uses and is implemented here from the published
  algorithm.

:class:`ZipfianStream` wraps either sampler into a weighted update stream
(unit weights by default; the paper's merge experiment uses weights
uniform on [1, 10000], Section 4.5).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.hashing.mixers import hash_u64
from repro.prng import Xoroshiro128PlusPlus
from repro.types import StreamUpdate

#: Universe sizes up to this use the exact CDF-table sampler by default.
TABLE_SAMPLER_LIMIT = 4_000_000


class ZipfTableSampler:
    """Exact Zipf(α) sampler over ranks ``1..universe`` via an inverse CDF."""

    def __init__(self, universe: int, alpha: float, seed: int = 0) -> None:
        if universe <= 0:
            raise InvalidParameterError(f"universe must be positive, got {universe}")
        if alpha < 0:
            raise InvalidParameterError(f"alpha must be non-negative, got {alpha}")
        self.universe = universe
        self.alpha = alpha
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._np_rng = np.random.Generator(np.random.PCG64(seed))

    def sample(self, count: int) -> np.ndarray:
        """Return ``count`` ranks in ``[1, universe]``, Zipf(α)-distributed."""
        draws = self._np_rng.random(count)
        return np.searchsorted(self._cdf, draws, side="left") + 1

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank`` under the distribution."""
        if not 1 <= rank <= self.universe:
            return 0.0
        prev = self._cdf[rank - 2] if rank >= 2 else 0.0
        return float(self._cdf[rank - 1] - prev)


class RejectionInversionZipf:
    """O(1)-memory Zipf(α) sampler for huge universes (α > 0).

    Implements Hörmann-Derflinger rejection-inversion: invert the integral
    of the continuous majorizing function ``h(x) = x^(-α)`` and accept or
    reject against the discrete probabilities.  Expected acceptance
    probability is bounded below by a constant for all α > 0.
    """

    def __init__(self, universe: int, alpha: float, rng: Xoroshiro128PlusPlus) -> None:
        if universe <= 0:
            raise InvalidParameterError(f"universe must be positive, got {universe}")
        if alpha <= 0:
            raise InvalidParameterError(
                f"rejection-inversion requires alpha > 0, got {alpha}"
            )
        self.universe = universe
        self.alpha = alpha
        self._rng = rng
        self._h_integral_x1 = self._h_integral(1.5) - 1.0
        self._h_integral_n = self._h_integral(universe + 0.5)
        self._s = 2.0 - self._h_integral_inverse(self._h_integral(2.5) - self._h(2.0))

    # -- the H transform and helpers (notation follows the paper) ------------

    def _h(self, x: float) -> float:
        return math.exp(-self.alpha * math.log(x))

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.alpha) * log_x) * log_x

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.alpha)
        if t < -1.0:
            # Numerical stability near the lower boundary of the domain.
            t = -1.0
        return math.exp(_helper1(t) * x)

    def sample_one(self) -> int:
        """Return one rank in ``[1, universe]``."""
        rng = self._rng
        while True:
            u = self._h_integral_n + rng.random() * (
                self._h_integral_x1 - self._h_integral_n
            )
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.universe:
                k = self.universe
            if k - x <= self._s or u >= self._h_integral(k + 0.5) - self._h(k):
                return k

    def sample(self, count: int) -> list[int]:
        """Return ``count`` ranks."""
        return [self.sample_one() for _ in range(count)]


def _helper1(t: float) -> float:
    """Stable ``log(1+t)/t``."""
    if abs(t) > 1e-8:
        return math.log1p(t) / t
    return 1.0 - t / 2.0 + t * t / 3.0


def _helper2(t: float) -> float:
    """Stable ``(exp(t)-1)/t``."""
    if abs(t) > 1e-8:
        return math.expm1(t) / t
    return 1.0 + t / 2.0 * (1.0 + t / 3.0)


class ZipfianStream:
    """A finite stream of weighted updates with Zipfian item popularity.

    Parameters
    ----------
    num_updates:
        Stream length ``n``.
    universe:
        Number of distinct ranks the distribution ranges over.
    alpha:
        Zipf skew.  The paper's merge experiment uses 1.05 (Section 4.5).
    seed:
        Seed controlling both item draws and weights.
    weight_low, weight_high:
        When both given, weights are uniform integers on the inclusive
        range (the paper's [1, 10000]); when omitted, weights are 1.0.
    scramble_ids:
        When True (default), rank ``r`` is mapped through a bijective
        64-bit mix so item identifiers are not sequential integers —
        matching real data and defeating accidental correlation with the
        table hash.  Ground-truth code works with whatever ids are
        emitted, so analyses are unaffected.
    """

    def __init__(
        self,
        num_updates: int,
        universe: int,
        alpha: float,
        seed: int = 0,
        weight_low: Optional[float] = None,
        weight_high: Optional[float] = None,
        scramble_ids: bool = True,
        batch_size: int = 65536,
    ) -> None:
        if num_updates < 0:
            raise InvalidParameterError(f"num_updates must be >= 0, got {num_updates}")
        if (weight_low is None) != (weight_high is None):
            raise InvalidParameterError(
                "weight_low and weight_high must be given together"
            )
        if weight_low is not None and not 0 < weight_low <= weight_high:
            raise InvalidParameterError(
                f"need 0 < weight_low <= weight_high, got [{weight_low}, {weight_high}]"
            )
        self.num_updates = num_updates
        self.universe = universe
        self.alpha = alpha
        self.seed = seed
        self.weight_low = weight_low
        self.weight_high = weight_high
        self.scramble_ids = scramble_ids
        self.batch_size = batch_size

    def __len__(self) -> int:
        return self.num_updates

    def _rank_to_id(self, ranks: np.ndarray) -> np.ndarray:
        if not self.scramble_ids:
            return ranks.astype(np.uint64)
        # Vectorized splitmix-style mix of (rank ^ seed-derived constant).
        x = ranks.astype(np.uint64)
        with np.errstate(over="ignore"):
            x = x ^ np.uint64(hash_u64(self.seed, 0x5EED))
            x = (x ^ (x >> np.uint64(33))) * np.uint64(0xFF51AFD7ED558CCD)
            x = (x ^ (x >> np.uint64(33))) * np.uint64(0xC4CEB9FE1A85EC53)
            x = x ^ (x >> np.uint64(33))
        return x

    def batches(
        self, batch_size: Optional[int] = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(item_ids, weights)`` numpy array pairs.

        ``batch_size`` overrides the constructor's batch size for this
        traversal; the emitted updates are identical either way (every
        batch boundary is transparent to the draws).
        """
        if batch_size is None:
            batch_size = self.batch_size
        if batch_size <= 0:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        sampler = ZipfTableSampler(
            min(self.universe, TABLE_SAMPLER_LIMIT), self.alpha, seed=self.seed
        )
        if self.universe > TABLE_SAMPLER_LIMIT:
            # Fall back to the O(1)-memory sampler, one draw at a time.
            rng = Xoroshiro128PlusPlus(self.seed)
            big = RejectionInversionZipf(self.universe, self.alpha, rng)
        else:
            big = None
        weight_rng = np.random.Generator(np.random.PCG64(self.seed ^ 0xBEEF))
        remaining = self.num_updates
        while remaining > 0:
            count = min(batch_size, remaining)
            if big is None:
                ranks = sampler.sample(count)
            else:
                ranks = np.asarray(big.sample(count), dtype=np.int64)
            items = self._rank_to_id(ranks)
            if self.weight_low is None:
                weights = np.ones(count, dtype=np.float64)
            else:
                weights = weight_rng.integers(
                    int(self.weight_low), int(self.weight_high), size=count,
                    endpoint=True,
                ).astype(np.float64)
            yield items, weights
            remaining -= count

    def __iter__(self) -> Iterator[StreamUpdate]:
        for items, weights in self.batches():
            for item, weight in zip(items.tolist(), weights.tolist()):
                yield StreamUpdate(int(item), float(weight))
