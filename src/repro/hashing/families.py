"""Seeded hash families for the sketching baselines.

CountMin and CountSketch (the "linear sketch" class that Cormode and
Hadjieleftheriou compared counter-based algorithms against, cf. Section
1.3 of the paper) need per-row hash functions.  We use multiply-shift
hashing over the 64-bit integers — ``h_a,b(x) = ((a*x + b) mod 2^64) >> s``
— which is universal enough for both sketches in practice, with the keys
pre-mixed by ``fmix64`` to defeat structured inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.hashing.mixers import fmix64, fmix64_array
from repro.prng import SplitMix64

_MASK64 = (1 << 64) - 1


class MultiplyShiftFamily:
    """``rows`` independent hash functions from 64-bit keys to ``[width)``.

    ``width`` must be a power of two so the final reduction is a shift.
    """

    __slots__ = ("_rows", "_width", "_shift", "_a", "_b")

    def __init__(self, rows: int, width: int, seed: int = 0) -> None:
        if rows <= 0:
            raise InvalidParameterError(f"rows must be positive, got {rows}")
        if width <= 0 or width & (width - 1):
            raise InvalidParameterError(f"width must be a positive power of two, got {width}")
        self._rows = rows
        self._width = width
        self._shift = 64 - width.bit_length() + 1
        gen = SplitMix64(seed)
        # Multipliers must be odd for multiply-shift universality.
        self._a = [gen.next_u64() | 1 for _ in range(rows)]
        self._b = [gen.next_u64() for _ in range(rows)]

    @property
    def rows(self) -> int:
        """Number of independent functions in the family."""
        return self._rows

    @property
    def width(self) -> int:
        """Size of each function's output range."""
        return self._width

    def hash(self, row: int, key: int) -> int:
        """Return ``h_row(key)`` in ``[0, width)``."""
        mixed = fmix64(key)
        return ((self._a[row] * mixed + self._b[row]) & _MASK64) >> self._shift

    def hash_row(self, row: int, keys: np.ndarray) -> np.ndarray:
        """Vectorized ``h_row`` over a uint64 key array.

        Element-wise identical to :meth:`hash` — the batched sketch
        paths rely on that to reproduce the scalar loop exactly.
        """
        mixed = fmix64_array(keys)
        with np.errstate(over="ignore"):
            hashed = np.uint64(self._a[row]) * mixed + np.uint64(self._b[row])
        return hashed >> np.uint64(self._shift)

    def hash_all(self, key: int) -> list[int]:
        """Return ``[h_0(key), ..., h_{rows-1}(key)]``."""
        mixed = fmix64(key)
        shift = self._shift
        return [
            ((a * mixed + b) & _MASK64) >> shift
            for a, b in zip(self._a, self._b)
        ]


class SignHashFamily:
    """``rows`` independent ±1 hash functions (for CountSketch)."""

    __slots__ = ("_rows", "_a", "_b")

    def __init__(self, rows: int, seed: int = 0) -> None:
        if rows <= 0:
            raise InvalidParameterError(f"rows must be positive, got {rows}")
        self._rows = rows
        gen = SplitMix64(seed ^ 0xABCDEF)
        self._a = [gen.next_u64() | 1 for _ in range(rows)]
        self._b = [gen.next_u64() for _ in range(rows)]

    @property
    def rows(self) -> int:
        """Number of independent sign functions."""
        return self._rows

    def sign(self, row: int, key: int) -> int:
        """Return +1 or -1 for ``key`` under function ``row``."""
        mixed = fmix64(key)
        bit = ((self._a[row] * mixed + self._b[row]) & _MASK64) >> 63
        return 1 if bit else -1
