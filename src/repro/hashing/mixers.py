"""64-bit integer mixing and item-to-identifier hashing.

The linear-probing counter table (Section 2.3.3 of the paper) needs a fast
hash ``h : [m] -> [L]`` from 64-bit item identifiers to table slots.  We
use MurmurHash3's ``fmix64`` finalizer, which is a bijective mixer with
full avalanche, composed with a seed so different tables probe in
different orders (the Section 3.2 note on merging explains why that
matters).
"""

from __future__ import annotations

from repro.hashing.murmur import murmur3_x64_128

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def fmix64(x: int) -> int:
    """MurmurHash3's 64-bit finalizer: a bijective full-avalanche mixer."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def hash_u64(x: int, seed: int = 0) -> int:
    """Hash a 64-bit integer under ``seed``; different seeds are independent.

    Two fmix64 rounds with the seed folded in between.  Bijective in ``x``
    for any fixed seed, so distinct keys never collide before the final
    modular reduction onto table slots.
    """
    return fmix64(fmix64(x) ^ ((seed * _GOLDEN) & _MASK64))


def item_to_u64(item: object) -> int:
    """Map an arbitrary item onto the 64-bit identifier space.

    * non-negative ints below 2**64 are passed through unchanged (the
      common case: IPv4/IPv6-derived identifiers, user ids, ...);
    * other ints are folded by mixing their magnitude with their sign;
    * ``str`` and ``bytes`` are hashed with MurmurHash3 x64/128 and the
      low word is used.

    This is how the public sketches accept friendly item types while the
    internal tables stay flat arrays of integers.
    """
    if isinstance(item, bool):
        return int(item)
    if isinstance(item, int):
        if 0 <= item <= _MASK64:
            return item
        folded = fmix64(abs(item) & _MASK64) ^ fmix64((abs(item) >> 64) & _MASK64)
        if item < 0:
            folded = fmix64(folded ^ _GOLDEN)
        return folded & _MASK64
    if isinstance(item, str):
        low, _high = murmur3_x64_128(item.encode("utf-8"))
        return low
    if isinstance(item, (bytes, bytearray, memoryview)):
        low, _high = murmur3_x64_128(bytes(item))
        return low
    raise TypeError(
        f"items must be int, str, or bytes-like; got {type(item).__name__}"
    )
