"""64-bit integer mixing and item-to-identifier hashing.

The linear-probing counter table (Section 2.3.3 of the paper) needs a fast
hash ``h : [m] -> [L]`` from 64-bit item identifiers to table slots.  We
use MurmurHash3's ``fmix64`` finalizer, which is a bijective mixer with
full avalanche, composed with a seed so different tables probe in
different orders (the Section 3.2 note on merging explains why that
matters).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidUpdateError
from repro.hashing.murmur import murmur3_x64_128

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def fmix64(x: int) -> int:
    """MurmurHash3's 64-bit finalizer: a bijective full-avalanche mixer."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def fmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`fmix64` over a uint64 array.

    Bit-identical to the scalar mixer element-wise (uint64 arithmetic is
    the same mod-2**64 arithmetic the masks emulate); used by the batched
    ingestion paths of the sketching baselines.
    """
    x = np.asarray(x, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(33)
        x *= np.uint64(0xFF51AFD7ED558CCD)
        x ^= x >> np.uint64(33)
        x *= np.uint64(0xC4CEB9FE1A85EC53)
        x ^= x >> np.uint64(33)
    return x


def hash_u64(x: int, seed: int = 0) -> int:
    """Hash a 64-bit integer under ``seed``; different seeds are independent.

    Two fmix64 rounds with the seed folded in between.  Bijective in ``x``
    for any fixed seed, so distinct keys never collide before the final
    modular reduction onto table slots.
    """
    return fmix64(fmix64(x) ^ ((seed * _GOLDEN) & _MASK64))


def hash_u64_array(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`hash_u64` over a uint64 array.

    Bit-identical to the scalar hash element-wise — the batched probing
    paths of the open-addressing counter stores rely on this to land
    every key in exactly the slot the scalar loop would probe.
    """
    out = fmix64_array(x)
    if seed:
        out ^= np.uint64((seed * _GOLDEN) & _MASK64)
    with np.errstate(over="ignore"):
        out ^= out >> np.uint64(33)
        out *= np.uint64(0xFF51AFD7ED558CCD)
        out ^= out >> np.uint64(33)
        out *= np.uint64(0xC4CEB9FE1A85EC53)
        out ^= out >> np.uint64(33)
    return out


def items_to_u64_array(items: object) -> np.ndarray:
    """Coerce a batch of item identifiers to a uint64 array, losslessly.

    The array-batch analogue of :func:`item_to_u64` for the common case
    of integer identifiers.  Integer NumPy arrays are cast directly;
    float arrays are rejected (a float64 id above 2**53 has already lost
    bits, and NumPy's C cast would wrap out-of-range values silently).
    Other inputs (lists, object arrays) are converted element-exact from
    the Python integers — never through an intermediate float64 — and
    any value the conversion would corrupt (negative, >= 2**64, or a
    non-integral number) raises :class:`~repro.errors.InvalidUpdateError`
    rather than wrapping or truncating.
    """
    if isinstance(items, np.ndarray):
        kind = items.dtype.kind
        if kind == "u":
            return items.astype(np.uint64, copy=False)
        if kind in ("i", "b"):
            if kind == "i" and items.size and int(items.min()) < 0:
                raise InvalidUpdateError(
                    f"item ids must be non-negative, got {int(items.min())}"
                )
            return items.astype(np.uint64, copy=False)
        if kind != "O":
            # Floats (and anything else numeric-lossy) are rejected
            # outright; object arrays fall through to the exact path.
            raise InvalidUpdateError(
                f"item ids must be an integer array, got dtype {items.dtype}"
            )
    try:
        original = np.asarray(items, dtype=object)
        out = original.astype(np.uint64)
    except (OverflowError, ValueError, TypeError) as exc:
        raise InvalidUpdateError(f"invalid item ids for a batch: {exc}") from exc
    # The object->uint64 cast truncates non-integral numbers instead of
    # raising; comparing against the originals catches every lossy case.
    if out.size and not (original == out).all():
        raise InvalidUpdateError("item ids must be integral values")
    return out


def item_to_u64(item: object) -> int:
    """Map an arbitrary item onto the 64-bit identifier space.

    * non-negative ints below 2**64 are passed through unchanged (the
      common case: IPv4/IPv6-derived identifiers, user ids, ...);
    * other ints are folded by mixing their magnitude with their sign;
    * ``str`` and ``bytes`` are hashed with MurmurHash3 x64/128 and the
      low word is used.

    This is how the public sketches accept friendly item types while the
    internal tables stay flat arrays of integers.
    """
    if isinstance(item, bool):
        return int(item)
    if isinstance(item, int):
        if 0 <= item <= _MASK64:
            return item
        folded = fmix64(abs(item) & _MASK64) ^ fmix64((abs(item) >> 64) & _MASK64)
        if item < 0:
            folded = fmix64(folded ^ _GOLDEN)
        return folded & _MASK64
    if isinstance(item, str):
        low, _high = murmur3_x64_128(item.encode("utf-8"))
        return low
    if isinstance(item, (bytes, bytearray, memoryview)):
        low, _high = murmur3_x64_128(bytes(item))
        return low
    raise TypeError(
        f"items must be int, str, or bytes-like; got {type(item).__name__}"
    )
