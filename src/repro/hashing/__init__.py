"""From-scratch hash functions used by every table and sketch.

* :mod:`repro.hashing.mixers` — 64-bit finalizers (MurmurHash3's
  ``fmix64``), seeded integer hashing, and mapping of arbitrary items
  (ints, strings, bytes) onto the 64-bit identifier space the counter
  tables operate on.
* :mod:`repro.hashing.murmur` — MurmurHash3 x64/128 for byte strings.
* :mod:`repro.hashing.families` — seeded multiply-shift hash families for
  the CountMin / CountSketch baselines.
"""

from repro.hashing.families import MultiplyShiftFamily, SignHashFamily
from repro.hashing.mixers import fmix64, hash_u64, hash_u64_array, item_to_u64
from repro.hashing.murmur import murmur3_x64_128

__all__ = [
    "fmix64",
    "hash_u64",
    "hash_u64_array",
    "item_to_u64",
    "murmur3_x64_128",
    "MultiplyShiftFamily",
    "SignHashFamily",
]
