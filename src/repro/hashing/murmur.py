"""MurmurHash3 x64/128, implemented from the reference algorithm.

This is the hash Apache DataSketches itself uses for item identifiers.
We implement the 128-bit x64 variant (Austin Appleby's ``MurmurHash3_x64_128``)
for byte strings; :func:`repro.hashing.mixers.item_to_u64` uses the low
64-bit word to map strings onto the integer identifier space.
"""

from __future__ import annotations

import struct

_MASK64 = (1 << 64) - 1

_C1 = 0x87C37B91114253D5
_C2 = 0x4CF5AD432745937F


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_x64_128(data: bytes, seed: int = 0) -> tuple[int, int]:
    """Hash ``data`` and return the 128-bit digest as ``(low64, high64)``.

    Matches the reference C++ implementation byte-for-byte (verified in
    the test suite against published known-answer vectors).
    """
    length = len(data)
    nblocks = length // 16

    h1 = seed & _MASK64
    h2 = seed & _MASK64

    # Body: 16-byte blocks.
    for block in range(nblocks):
        k1, k2 = struct.unpack_from("<QQ", data, block * 16)

        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1

        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2

        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    # Tail: up to 15 trailing bytes.
    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    tail_len = len(tail)
    for i in range(tail_len - 1, 7, -1):  # bytes 8..15 feed k2
        k2 = (k2 << 8) | tail[i]
    for i in range(min(tail_len, 8) - 1, -1, -1):  # bytes 0..7 feed k1
        k1 = (k1 << 8) | tail[i]

    if tail_len > 8:
        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2
    if tail_len > 0:
        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1

    # Finalization.
    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return h1, h2
