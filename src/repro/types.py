"""Shared type aliases and small value objects used across the library.

The stream model follows Section 1.2 of the paper: a stream is a sequence
of updates ``(i_j, delta_j)`` where ``i_j`` is an item identifier from a
universe ``[m]`` and ``delta_j > 0`` is a real-valued weight.  Item
identifiers are 64-bit integers throughout the performance-oriented code
paths (the paper stores identifiers as ``long long``, cf. Section 4.1);
helpers in :mod:`repro.hashing` map strings and bytes onto that space.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Protocol, runtime_checkable

#: An item identifier.  The probing table requires non-negative 64-bit ints.
ItemId = int

#: A strictly positive, real-valued update weight.
Weight = float


class StreamUpdate(NamedTuple):
    """One weighted stream update ``(item, weight)``.

    ``weight`` defaults to ``1.0`` so unit-weight streams can be written as
    ``StreamUpdate(item)``.
    """

    item: ItemId
    weight: Weight = 1.0


#: Anything that yields stream updates, item ids, or ``(item, weight)`` pairs.
UpdateStream = Iterable[StreamUpdate]


@runtime_checkable
class SupportsUpdate(Protocol):
    """Protocol implemented by every frequency summary in this library."""

    def update(self, item: ItemId, weight: Weight = 1.0) -> None:
        """Process one weighted stream update."""

    def estimate(self, item: ItemId) -> float:
        """Return the point-query estimate ``f-hat(item)``."""


@runtime_checkable
class SupportsBounds(Protocol):
    """Protocol for summaries that expose deterministic error brackets."""

    def lower_bound(self, item: ItemId) -> float:
        """A value certainly ``<= f(item)``."""

    def upper_bound(self, item: ItemId) -> float:
        """A value certainly ``>= f(item)``."""
