"""Every comparison algorithm from the paper, implemented from scratch.

Counter-based algorithms (Section 1.3):

* :class:`MisraGries` — Algorithm 1, unit updates.
* :class:`SpaceSavingHeap` — SS on an indexed min-heap; with unit updates
  this is the paper's SSH, with weighted updates it is MHE (the prior
  state of the art for weighted streams).
* :class:`StreamSummary` — Metwally et al.'s doubly-linked-list SS (the
  SSL of Cormode-Hadjieleftheriou), unit updates, O(1) worst case.
* :class:`RTUCMisraGries` / :class:`RTUCSpaceSaving` — the
  reduce-to-unit-case weighted extensions (Θ(Δ) per update).
* :class:`ReduceByMinCounter` — RBMC, Berinde et al.'s weighted MG.
* :func:`make_med` — MED (Algorithm 3) via the exact-k*-th policy.

The "other classes" from Cormode-Hadjieleftheriou's taxonomy, for the
counter-vs-sketch context experiment:

* :class:`CountMinSketch`, :class:`CountSketch` — linear sketches.
* :class:`LossyCounting`, :class:`StickySampling` — the Manku-Motwani
  quantile-style algorithms.

Prior merge procedures (Section 3.1 / Figure 4): :mod:`merge_prior`.

Batched ingestion
-----------------
Every baseline mixes in :class:`~repro.baselines.batch.BatchUpdateMixin`
(re-exported here), giving it the same ``update_batch(items, weights)``
array interface as the paper's sketch — so scalar-vs-batch throughput
comparisons across algorithms stay apples-to-apples.  The mixin's
default is a faithful per-item replay; algorithms whose semantics
genuinely commute override it (:class:`CountMinSketch` vectorizes its
non-conservative path with ``np.add.at``).
"""

from repro.baselines.batch import BatchUpdateMixin
from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.factory import make_algorithm, make_med, make_smed, make_smin
from repro.baselines.heap import IndexedMinHeap
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.merge_prior import ach13_merge, hoa61_merge
from repro.baselines.misra_gries import MisraGries
from repro.baselines.rbmc import ReduceByMinCounter
from repro.baselines.rtuc import RTUCMisraGries, RTUCSpaceSaving
from repro.baselines.space_saving_heap import SpaceSavingHeap
from repro.baselines.sticky_sampling import StickySampling
from repro.baselines.stream_summary import StreamSummary

__all__ = [
    "BatchUpdateMixin",
    "MisraGries",
    "SpaceSavingHeap",
    "StreamSummary",
    "RTUCMisraGries",
    "RTUCSpaceSaving",
    "ReduceByMinCounter",
    "CountMinSketch",
    "CountSketch",
    "LossyCounting",
    "StickySampling",
    "IndexedMinHeap",
    "ach13_merge",
    "hoa61_merge",
    "make_algorithm",
    "make_smed",
    "make_smin",
    "make_med",
]
