"""The prior merge procedures compared against in Figure 4 (Section 3.1).

Both implement Agarwal et al.'s mergeable-summaries procedure for MG-type
summaries: sum the two summaries' counters, find the (k+1)-th largest of
the combined multiset, subtract it from every counter, and keep the (at
most k) survivors.  They differ in how the order statistic is found:

* :func:`ach13_merge` — "ACH+13": full sort, Ω(k log k);
* :func:`hoa61_merge` — "Hoa61": quickselect, O(k), the variant this
  paper proposes as the stronger straw man (Section 3.1).

Both allocate an intermediate combined table (capacity up to 2k) and a
fresh output sketch — the 2.5x space overhead Section 4.5 charges them —
whereas Algorithm 5 (``FrequentItemsSketch.merge``) works in place.
The offset bookkeeping follows the Section 2.3.1 estimator: output offset
= both input offsets plus the subtracted order statistic, preserving
``lower <= f <= upper``.
"""

from __future__ import annotations

from repro.core.frequent_items import FrequentItemsSketch
from repro.errors import IncompatibleSketchError
from repro.prng import Xoroshiro128PlusPlus
from repro.selection.quickselect import kth_largest
from repro.types import ItemId


def _combine_counters(
    first: FrequentItemsSketch, second: FrequentItemsSketch
) -> dict[ItemId, float]:
    """Sum the raw counters of both sketches into a fresh table."""
    combined: dict[ItemId, float] = dict(first._store.items())
    for item, count in second._store.items():
        existing = combined.get(item)
        combined[item] = count if existing is None else existing + count
    return combined


def _build_output(
    first: FrequentItemsSketch,
    second: FrequentItemsSketch,
    survivors: dict[ItemId, float],
    subtracted: float,
) -> FrequentItemsSketch:
    """Allocate the fresh output summary the prior procedures require."""
    out = FrequentItemsSketch(
        first.max_counters,
        policy=first.policy,
        backend=first.backend,
        seed=first.seed,
    )
    for item, count in survivors.items():
        out._store.insert(item, count)
    out._offset = first.maximum_error + second.maximum_error + subtracted
    out._stream_weight = first.stream_weight + second.stream_weight
    out.stats.scratch_words = 2 * (len(first._store) + len(second._store))
    return out


def _check_compatible(
    first: FrequentItemsSketch, second: FrequentItemsSketch
) -> None:
    if first.max_counters != second.max_counters:
        raise IncompatibleSketchError(
            "the prior merge procedures require equal k "
            f"(got {first.max_counters} and {second.max_counters})"
        )


def ach13_merge(
    first: FrequentItemsSketch, second: FrequentItemsSketch
) -> FrequentItemsSketch:
    """Sort-based merge of Agarwal et al. (the paper's "ACH+13").

    Returns a new sketch; the inputs are unchanged.
    """
    _check_compatible(first, second)
    k = first.max_counters
    combined = _combine_counters(first, second)
    if len(combined) <= k:
        return _build_output(first, second, combined, 0.0)
    ordered = sorted(combined.items(), key=lambda kv: -kv[1])
    cutoff = ordered[k][1]  # the (k+1)-th largest counter
    survivors = {
        item: count - cutoff for item, count in ordered[:k] if count > cutoff
    }
    return _build_output(first, second, survivors, cutoff)


def hoa61_merge(
    first: FrequentItemsSketch,
    second: FrequentItemsSketch,
    seed: int = 0,
) -> FrequentItemsSketch:
    """Quickselect-based variant of the prior merge (the paper's "Hoa61").

    Identical output distribution to :func:`ach13_merge` (exact ties at
    the cutoff are dropped by both), found in O(k) instead of O(k log k).
    """
    _check_compatible(first, second)
    k = first.max_counters
    combined = _combine_counters(first, second)
    if len(combined) <= k:
        return _build_output(first, second, combined, 0.0)
    values = list(combined.values())
    rng = Xoroshiro128PlusPlus(seed)
    cutoff = kth_largest(values, k + 1, rng)
    survivors = {}
    for item, count in combined.items():
        remaining = count - cutoff
        if remaining > 0.0:
            survivors[item] = remaining
    return _build_output(first, second, survivors, cutoff)
