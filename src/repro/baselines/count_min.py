"""CountMin sketch (Cormode-Muthukrishnan, LATIN 2004).

A linear sketch: ``depth`` rows of ``width`` counters; an update adds
its weight at one hashed cell per row, a point query takes the row-wise
minimum, overestimating by at most ``e/width * N`` per row w.h.p.  The
optional *conservative update* only raises cells to the new minimum,
trading update speed for accuracy.

Included as the representative of the "(linear) sketch" class that
Cormode and Hadjieleftheriou compared against counter-based algorithms
(Section 1.3); the context benchmark reproduces their finding — and this
paper's premise — that counter-based algorithms dominate for insertion
streams.  Heavy hitters are tracked with the standard candidate-set
method (a bounded dict of the items whose estimates cleared the
threshold when they arrived).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.hashing.families import MultiplyShiftFamily
from repro.hashing.mixers import item_to_u64
from repro.metrics.instrumentation import OpStats
from repro.streams.model import as_batch
from repro.types import ItemId


class CountMinSketch(BatchUpdateMixin):
    """CountMin with optional conservative update and HH candidate tracking."""

    __slots__ = (
        "_depth",
        "_width",
        "_table",
        "_family",
        "_conservative",
        "_stream_weight",
        "_track_top",
        "_candidates",
        "stats",
    )

    def __init__(
        self,
        depth: int,
        width: int,
        seed: int = 0,
        conservative: bool = False,
        track_top: int = 0,
    ) -> None:
        if depth <= 0:
            raise InvalidParameterError(f"depth must be positive, got {depth}")
        if width <= 0 or width & (width - 1):
            raise InvalidParameterError(
                f"width must be a positive power of two, got {width}"
            )
        self._depth = depth
        self._width = width
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._family = MultiplyShiftFamily(depth, width, seed)
        self._conservative = conservative
        self._stream_weight = 0.0
        self._track_top = track_top
        self._candidates: dict[ItemId, float] = {}
        self.stats = OpStats()

    @property
    def depth(self) -> int:
        """Number of rows."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Add ``weight`` to the item's cell in every row."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        self.stats.updates += 1
        key = item_to_u64(item)
        columns = self._family.hash_all(key)
        table = self._table
        if self._conservative:
            current = min(table[row, col] for row, col in enumerate(columns))
            target = current + weight
            for row, col in enumerate(columns):
                if table[row, col] < target:
                    table[row, col] = target
        else:
            for row, col in enumerate(columns):
                table[row, col] += weight
        if self._track_top:
            self._track(item, columns)

    def update_batch(self, items, weights=None) -> None:
        """Vectorized batch ingest for the plain (non-conservative) path.

        A CountMin cell is a sum, so updates commute: ``np.add.at``
        scatter-adds a whole batch per row in one call, with results
        identical to the per-item loop (bit-identical for
        integer-representable weights).  The conservative-update and
        candidate-tracking variants are order-sensitive, so they fall
        back to the mixin's faithful per-item replay.
        """
        if self._conservative or self._track_top:
            super().update_batch(items, weights)
            return
        items, weights = as_batch(items, weights)
        n = items.shape[0]
        if n == 0:
            return
        table = self._table
        for row in range(self._depth):
            columns = self._family.hash_row(row, items)
            np.add.at(table[row], columns, weights)
        self._stream_weight += float(weights.sum())
        self.stats.updates += n

    def _track(self, item: ItemId, columns: list[int]) -> None:
        estimate = min(self._table[row, col] for row, col in enumerate(columns))
        candidates = self._candidates
        candidates[item] = estimate
        if len(candidates) > 2 * self._track_top:
            # Keep the top track_top candidates by estimate.
            kept = sorted(candidates.items(), key=lambda kv: -kv[1])[: self._track_top]
            self._candidates = dict(kept)

    def estimate(self, item: ItemId) -> float:
        """Row-wise minimum: never underestimates."""
        key = item_to_u64(item)
        table = self._table
        return float(
            min(table[row, col] for row, col in enumerate(self._family.hash_all(key)))
        )

    def upper_bound(self, item: ItemId) -> float:
        """The estimate itself (CountMin only overestimates)."""
        return self.estimate(item)

    def lower_bound(self, item: ItemId) -> float:
        """``max(0, estimate - 2N/width)`` via the Markov guarantee."""
        return max(0.0, self.estimate(item) - 2.0 * self._stream_weight / self._width)

    def heavy_hitter_candidates(self, phi: float) -> dict[ItemId, float]:
        """Tracked candidates whose current estimate is >= ``phi * N``.

        Requires construction with ``track_top > 0``.
        """
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self._stream_weight
        return {
            item: self.estimate(item)
            for item in self._candidates
            if self.estimate(item) >= threshold
        }

    def space_bytes(self) -> int:
        """8 bytes per cell plus hash parameters."""
        return 8 * self._depth * self._width + 16 * self._depth

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Cell-wise addition (requires identical shape and seed family)."""
        if (self._depth, self._width) != (other._depth, other._width):
            raise InvalidParameterError("cannot merge CountMin sketches of different shapes")
        self._table += other._table
        self._stream_weight += other._stream_weight
        return self
