"""Space Saving on a min-heap: SSH for unit streams, MHE for weighted.

Algorithm 2 of the paper: a hit increments the item's counter; a miss
against a full table *takes over* the minimum counter — the new item
inherits ``c_min + delta``.  The heap keeps the minimum at the root, so
every update costs O(log k) sift work; that, plus the extra heap arrays
alongside the hash index, is exactly the overhead the paper's SMED
removes.  MHE (the weighted min-heap extension) was the implementation
of choice for weighted streams in prior work (e.g. hierarchical heavy
hitters); it is the headline baseline of Figures 1 and 2.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.baselines.heap import IndexedMinHeap
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes
from repro.types import ItemId


class SpaceSavingHeap(BatchUpdateMixin):
    """SS with an indexed min-heap (SSH unit-weight; MHE weighted)."""

    __slots__ = ("_k", "_heap", "_stream_weight", "stats")

    def __init__(self, max_counters: int) -> None:
        if max_counters < 1:
            raise InvalidParameterError(
                f"max_counters must be at least 1, got {max_counters}"
            )
        self._k = max_counters
        self._heap = IndexedMinHeap()
        self._stream_weight = 0.0
        self.stats = OpStats()

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._k

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._heap)

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    @property
    def maximum_error(self) -> float:
        """The minimum counter value — SS's bound on any overestimate."""
        if len(self._heap) < self._k:
            return 0.0
        return self._heap.min_value()

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one weighted update (Algorithm 2, weighted extension)."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        stats = self.stats
        stats.updates += 1
        heap = self._heap
        sifts_before = heap.sift_steps
        current = heap.value_of(item)
        if current is not None:
            heap.increase_key(item, current + weight)
            stats.hits += 1
        elif len(heap) < self._k:
            heap.push(item, weight)
            stats.inserts += 1
        else:
            # Take over the minimum counter (Algorithm 2, lines 10-12).
            heap.replace_min(item, heap.min_value() + weight)
            stats.inserts += 1
        stats.heap_sifts += heap.sift_steps - sifts_before

    def estimate(self, item: ItemId) -> float:
        """``c(i)`` if assigned, else the minimum counter (Algorithm 2)."""
        value = self._heap.value_of(item)
        if value is not None:
            return value
        if len(self._heap) < self._k:
            return 0.0
        return self._heap.min_value()

    def upper_bound(self, item: ItemId) -> float:
        """SS estimates never underestimate: the estimate is the bound."""
        return self.estimate(item)

    def lower_bound(self, item: ItemId) -> float:
        """``c(i) - c_min`` for tracked items (0 floor), else 0."""
        value = self._heap.value_of(item)
        if value is None:
            return 0.0
        return max(0.0, value - self.maximum_error)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over assigned ``(item, counter)`` pairs."""
        return iter(self._heap.items())

    def space_bytes(self) -> int:
        """Modeled footprint: hash index + heap arrays (cf. Section 4.3)."""
        return space_model_bytes("mhe", self._k)

    def __len__(self) -> int:
        return len(self._heap)
