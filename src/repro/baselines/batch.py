"""The shared array-batch ingestion mixin for the baseline algorithms.

Every baseline mixes this in, giving it the same
``update_batch(items, weights)`` interface as the paper's sketch — so
scalar-vs-batch throughput comparisons across algorithms stay
apples-to-apples.  The default is a faithful per-item replay
(bound-method hoisted): most baselines are *order-sensitive* in exactly
the way the paper exploits (a decrement between two occurrences of one
key changes the outcome), so a generic grouped fast path would change
results.  Algorithms whose semantics genuinely commute override it —
:class:`~repro.baselines.count_min.CountMinSketch` vectorizes its
non-conservative path with ``np.add.at``.
"""

from __future__ import annotations

from repro.streams.model import as_batch


class BatchUpdateMixin:
    """Array-batch ingestion for per-item ``update`` algorithms.

    ``update_batch(items, weights)`` consumes parallel NumPy arrays (or
    sequences) and is defined to be *exactly* the per-item loop — same
    updates, same order, same resulting state — so any summary gains the
    batch API without changing its semantics.  The whole batch is
    validated up front (ids lossless, weights positive and aligned), so
    a rejected batch never leaves the summary partially updated.
    Subclasses with order-insensitive update rules may override this
    with a vectorized implementation.
    """

    __slots__ = ()

    def update_batch(self, items, weights=None) -> None:
        """Process ``(items[i], weights[i])`` for every i, in order."""
        items, weights = as_batch(items, weights)
        update = self.update
        for item, weight in zip(items.tolist(), weights.tolist()):
            update(item, weight)
