"""Reduce-To-Unit-Case weighted extensions (Sections 1.3.4-1.3.5).

The naive way to make a unit-stream algorithm weighted: explode an
update ``(i, delta)`` into ``delta`` unit updates.  Time Θ(delta) per
update and integer weights only — "unacceptable when the weights may be
large" — but semantically golden: RTUC-MG is *the* reference semantics
that RBMC provably matches, and RTUC-SS likewise for MHE (Section 1.4).
The test suite leans on both equivalences as whole-algorithm oracles.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving_heap import SpaceSavingHeap
from repro.errors import InvalidUpdateError
from repro.types import ItemId


class RTUCMisraGries(BatchUpdateMixin):
    """RTUC-MG: weighted Misra-Gries by unit-update explosion."""

    __slots__ = ("_inner",)

    def __init__(self, max_counters: int) -> None:
        self._inner = MisraGries(max_counters)

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._inner.max_counters

    @property
    def stats(self):
        """Op counters of the underlying unit-update algorithm."""
        return self._inner.stats

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Feed ``weight`` unit updates; ``weight`` must be a positive int."""
        if weight <= 0 or weight != int(weight):
            raise InvalidUpdateError(
                f"RTUC requires positive integer weights, got {weight}"
            )
        inner = self._inner
        for _ in range(int(weight)):
            inner.update(item)
        inner.stats.rtuc_expansions += int(weight)

    def estimate(self, item: ItemId) -> float:
        """The unit-case MG estimate."""
        return self._inner.estimate(item)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Assigned ``(item, counter)`` pairs."""
        return self._inner.items()

    def __len__(self) -> int:
        return len(self._inner)


class RTUCSpaceSaving(BatchUpdateMixin):
    """RTUC-SS: weighted Space Saving by unit-update explosion."""

    __slots__ = ("_inner",)

    def __init__(self, max_counters: int) -> None:
        self._inner = SpaceSavingHeap(max_counters)

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._inner.max_counters

    @property
    def stats(self):
        """Op counters of the underlying unit-update algorithm."""
        return self._inner.stats

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Feed ``weight`` unit updates; ``weight`` must be a positive int."""
        if weight <= 0 or weight != int(weight):
            raise InvalidUpdateError(
                f"RTUC requires positive integer weights, got {weight}"
            )
        inner = self._inner
        for _ in range(int(weight)):
            inner.update(item, 1.0)
        inner.stats.rtuc_expansions += int(weight)

    def estimate(self, item: ItemId) -> float:
        """The unit-case SS estimate."""
        return self._inner.estimate(item)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Assigned ``(item, counter)`` pairs."""
        return self._inner.items()

    def __len__(self) -> int:
        return len(self._inner)
