"""CountSketch (Charikar-Chen-Farach-Colton, ICALP 2002).

The signed linear sketch: each row adds ``sign(item) * weight`` at the
hashed cell and a point query is the *median* across rows of the signed
cell reads.  Unbiased, with error proportional to the L2 norm of the
frequency vector — tighter than CountMin on skewed data, at twice the
per-update hashing work.  Second representative of the sketch class for
the counter-vs-sketch context benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.hashing.families import MultiplyShiftFamily, SignHashFamily
from repro.hashing.mixers import item_to_u64
from repro.metrics.instrumentation import OpStats
from repro.types import ItemId


class CountSketch(BatchUpdateMixin):
    """CountSketch with median-of-rows point queries."""

    __slots__ = (
        "_depth",
        "_width",
        "_table",
        "_family",
        "_signs",
        "_stream_weight",
        "stats",
    )

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth <= 0:
            raise InvalidParameterError(f"depth must be positive, got {depth}")
        if width <= 0 or width & (width - 1):
            raise InvalidParameterError(
                f"width must be a positive power of two, got {width}"
            )
        self._depth = depth
        self._width = width
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._family = MultiplyShiftFamily(depth, width, seed)
        self._signs = SignHashFamily(depth, seed)
        self._stream_weight = 0.0
        self.stats = OpStats()

    @property
    def depth(self) -> int:
        """Number of rows."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Add ``sign * weight`` to the item's cell in every row."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        self.stats.updates += 1
        key = item_to_u64(item)
        table = self._table
        signs = self._signs
        for row, col in enumerate(self._family.hash_all(key)):
            table[row, col] += signs.sign(row, key) * weight

    def estimate(self, item: ItemId) -> float:
        """Median across rows of the signed cell values (unbiased)."""
        key = item_to_u64(item)
        table = self._table
        signs = self._signs
        reads = [
            signs.sign(row, key) * table[row, col]
            for row, col in enumerate(self._family.hash_all(key))
        ]
        return float(np.median(reads))

    def space_bytes(self) -> int:
        """8 bytes per cell plus hash parameters for both families."""
        return 8 * self._depth * self._width + 32 * self._depth

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Cell-wise addition (requires identical shape and seed family)."""
        if (self._depth, self._width) != (other._depth, other._width):
            raise InvalidParameterError("cannot merge CountSketches of different shapes")
        self._table += other._table
        self._stream_weight += other._stream_weight
        return self
