"""RBMC — Berinde et al.'s Reduce-By-Min-Counter weighted Misra-Gries.

The prior-work weighted MG (Section 1.3.4): on a miss against a full
table, decrement every counter by ``min(delta, c_min)``; if
``delta > c_min`` the freed counter is assigned to the new item with
``delta - c_min``.  Estimates are *identical* to RTUC-MG (and hence
satisfy Lemmas 1 and 2), but the runtime is not amortized O(1): on
adversarial streams — and, per the paper's experiments, on real packet
traces — a Θ(k) decrement pass can run on nearly every update, because
each pass is only guaranteed to free the minimum-valued counters.
:mod:`repro.streams.adversarial.rbmc_killer_stream` realizes the paper's
worst case.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes
from repro.types import ItemId


class ReduceByMinCounter(BatchUpdateMixin):
    """RBMC: weighted Misra-Gries decrementing by ``min(delta, c_min)``."""

    __slots__ = ("_k", "_counts", "_stream_weight", "stats")

    def __init__(self, max_counters: int) -> None:
        if max_counters < 1:
            raise InvalidParameterError(
                f"max_counters must be at least 1, got {max_counters}"
            )
        self._k = max_counters
        self._counts: dict[ItemId, float] = {}
        self._stream_weight = 0.0
        self.stats = OpStats()

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._k

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._counts)

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one weighted update per Berinde et al.'s rule."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        stats = self.stats
        stats.updates += 1
        counts = self._counts
        current = counts.get(item)
        if current is not None:
            counts[item] = current + weight
            stats.hits += 1
            return
        if len(counts) < self._k:
            counts[item] = weight
            stats.inserts += 1
            return
        # Full table: decrement by min(delta, c_min).
        c_min = min(counts.values())
        reduction = weight if weight <= c_min else c_min
        stats.decrements += 1
        stats.counters_scanned += 2 * len(counts)  # min scan + decrement pass
        survivors = {}
        freed = 0
        for key, value in counts.items():
            remaining = value - reduction
            if remaining > 0.0:
                survivors[key] = remaining
            else:
                freed += 1
        self._counts = survivors
        stats.counters_freed += freed
        if weight > c_min:
            survivors[item] = weight - c_min
            stats.inserts += 1

    def estimate(self, item: ItemId) -> float:
        """``c(i)`` if assigned, else 0 — identical to RTUC-MG."""
        return self._counts.get(item, 0.0)

    def lower_bound(self, item: ItemId) -> float:
        """Same as the estimate: RBMC never overestimates."""
        return self._counts.get(item, 0.0)

    def upper_bound(self, item: ItemId) -> float:
        """``c(i) + N/(k+1)`` via the Lemma 1 guarantee."""
        return self._counts.get(item, 0.0) + self._stream_weight / (self._k + 1)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over assigned ``(item, counter)`` pairs."""
        return iter(self._counts.items())

    def space_bytes(self) -> int:
        """Modeled footprint: one counter table (same as SMED/SMIN)."""
        return space_model_bytes("rbmc", self._k)

    def __len__(self) -> int:
        return len(self._counts)
