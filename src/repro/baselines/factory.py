"""Uniform construction of every compared algorithm by name.

The benchmark harness sweeps algorithm names; this module maps them to
configured instances sharing the minimal common interface
(``update(item, weight)``, ``estimate(item)``, ``stats``,
``space_bytes()``).
"""

from __future__ import annotations

from repro.baselines.rbmc import ReduceByMinCounter
from repro.baselines.space_saving_heap import SpaceSavingHeap
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import (
    ExactKthLargestPolicy,
    SampleQuantilePolicy,
)
from repro.errors import InvalidParameterError
from repro.selection.sampling import DEFAULT_SAMPLE_SIZE


def make_smed(
    k: int, seed: int = 0, backend: str = "dict", sample_size: int = DEFAULT_SAMPLE_SIZE
) -> FrequentItemsSketch:
    """The paper's recommended algorithm: sample-median decrements."""
    return FrequentItemsSketch(
        k, policy=SampleQuantilePolicy(0.5, sample_size), backend=backend, seed=seed
    )


def make_smin(
    k: int, seed: int = 0, backend: str = "dict", sample_size: int = DEFAULT_SAMPLE_SIZE
) -> FrequentItemsSketch:
    """The accuracy-leaning variant: sample-minimum decrements."""
    return FrequentItemsSketch(
        k, policy=SampleQuantilePolicy(0.0, sample_size), backend=backend, seed=seed
    )


def make_med(k: int, seed: int = 0, backend: str = "dict") -> FrequentItemsSketch:
    """Algorithm 3 (MED): exact k/2-th largest decrements."""
    return FrequentItemsSketch(
        k, policy=ExactKthLargestPolicy(0.5), backend=backend, seed=seed
    )


def make_quantile_variant(
    k: int,
    quantile: float,
    seed: int = 0,
    backend: str = "dict",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> FrequentItemsSketch:
    """A Section 4.4 variant decrementing by an arbitrary sample quantile."""
    return FrequentItemsSketch(
        k,
        policy=SampleQuantilePolicy(quantile, sample_size),
        backend=backend,
        seed=seed,
    )


def make_algorithm(name: str, k: int, seed: int = 0, backend: str = "dict"):
    """Build a weighted-stream algorithm by its paper name.

    Supported names: ``SMED``, ``SMIN``, ``MED``, ``RBMC``, ``MHE``, and
    ``SQ<percent>`` for arbitrary decrement quantiles (e.g. ``SQ70``).
    """
    upper = name.upper()
    if upper == "SMED":
        return make_smed(k, seed, backend)
    if upper == "SMIN":
        return make_smin(k, seed, backend)
    if upper == "MED":
        return make_med(k, seed, backend)
    if upper == "RBMC":
        return ReduceByMinCounter(k)
    if upper == "MHE":
        return SpaceSavingHeap(k)
    if upper.startswith("SQ"):
        try:
            percent = int(upper[2:])
        except ValueError as exc:
            raise InvalidParameterError(f"bad quantile algorithm name {name!r}") from exc
        if not 0 <= percent <= 100:
            raise InvalidParameterError(f"quantile out of range in {name!r}")
        return make_quantile_variant(k, percent / 100.0, seed, backend)
    raise InvalidParameterError(f"unknown algorithm {name!r}")
