"""Lossy Counting (Manku-Motwani, VLDB 2002), weighted-capable.

A representative of the "quantile algorithm" class in Cormode and
Hadjieleftheriou's taxonomy (Section 1.3): the stream is conceptually
divided into buckets of weight ``1/epsilon``; each entry carries the
bucket error ``delta`` it may have missed before insertion, and at every
bucket boundary entries with ``count + delta <= current_bucket`` are
pruned.  Estimates underestimate by at most ``epsilon * N``.  Unlike the
counter-based algorithms its space is O((1/ε) log(εN)) rather than a
fixed k — one of the reasons the paper's class of choice is counter-based.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.types import ItemId


class LossyCounting(BatchUpdateMixin):
    """Manku-Motwani Lossy Counting with real-valued weights."""

    __slots__ = ("_epsilon", "_entries", "_stream_weight", "_bucket", "stats")

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self._epsilon = epsilon
        #: item -> (count, delta): count since insertion, prior-bucket slack.
        self._entries: dict[ItemId, tuple[float, float]] = {}
        self._stream_weight = 0.0
        self._bucket = 1
        self.stats = OpStats()

    @property
    def epsilon(self) -> float:
        """The configured error fraction."""
        return self._epsilon

    @property
    def stream_weight(self) -> float:
        """Total processed weight ``N``."""
        return self._stream_weight

    @property
    def num_active(self) -> int:
        """Entries currently stored (varies with the data, unlike ``k``)."""
        return len(self._entries)

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one weighted update."""
        if weight <= 0:
            raise InvalidUpdateError(
                f"update weights must be positive, got {weight} for item {item}"
            )
        self._stream_weight += weight
        stats = self.stats
        stats.updates += 1
        entries = self._entries
        entry = entries.get(item)
        if entry is not None:
            entries[item] = (entry[0] + weight, entry[1])
            stats.hits += 1
        else:
            # delta = current bucket - 1: the weight this item may have
            # accumulated and lost in earlier buckets.
            entries[item] = (weight, float(self._bucket - 1))
            stats.inserts += 1
        current_bucket = int(math.ceil(self._epsilon * self._stream_weight))
        if current_bucket > self._bucket:
            self._bucket = current_bucket
            self._prune()

    def _prune(self) -> None:
        stats = self.stats
        stats.decrements += 1
        stats.counters_scanned += len(self._entries)
        threshold = float(self._bucket)
        survivors = {
            item: entry
            for item, entry in self._entries.items()
            if entry[0] + entry[1] > threshold
        }
        stats.counters_freed += len(self._entries) - len(survivors)
        self._entries = survivors

    def estimate(self, item: ItemId) -> float:
        """The stored count (an underestimate by at most ``epsilon * N``)."""
        entry = self._entries.get(item)
        return 0.0 if entry is None else entry[0]

    def upper_bound(self, item: ItemId) -> float:
        """``count + delta``: the most the true frequency can be."""
        entry = self._entries.get(item)
        if entry is None:
            return self._epsilon * self._stream_weight
        return entry[0] + entry[1]

    def lower_bound(self, item: ItemId) -> float:
        """Same as the estimate: Lossy Counting never overestimates."""
        return self.estimate(item)

    def heavy_hitters(self, phi: float) -> dict[ItemId, float]:
        """Items whose frequency may reach ``phi * N`` (no false negatives)."""
        if not 0.0 < phi <= 1.0:
            raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = (phi - self._epsilon) * self._stream_weight
        return {
            item: entry[0]
            for item, entry in self._entries.items()
            if entry[0] >= threshold
        }

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over stored ``(item, count)`` pairs."""
        for item, entry in self._entries.items():
            yield item, entry[0]

    def __len__(self) -> int:
        return len(self._entries)
