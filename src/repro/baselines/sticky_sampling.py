"""Sticky Sampling (Manku-Motwani, VLDB 2002) for unit streams.

The probabilistic sibling of Lossy Counting: items enter the summary by
coin flip at a rate that halves as the stream grows, and at each rate
change every stored counter is "diminished" by a run of tail coin
flips.  Provides (φ, ε)-heavy-hitter reporting with failure probability
δ.  Included to round out the Cormode-Hadjieleftheriou taxonomy the
paper builds on; like SSL it has no natural weighted extension.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.prng import Xoroshiro128PlusPlus
from repro.types import ItemId


class StickySampling(BatchUpdateMixin):
    """Manku-Motwani Sticky Sampling (unit updates)."""

    __slots__ = ("_epsilon", "_delta", "_phi", "_t", "_rate", "_next_boundary",
                 "_counts", "_num_updates", "_rng", "stats")

    def __init__(
        self, phi: float, epsilon: float, delta: float = 1e-4, seed: int = 0
    ) -> None:
        if not 0.0 < epsilon < phi <= 1.0:
            raise InvalidParameterError(
                f"need 0 < epsilon < phi <= 1, got epsilon={epsilon}, phi={phi}"
            )
        if not 0.0 < delta < 1.0:
            raise InvalidParameterError(f"delta must be in (0, 1), got {delta}")
        self._epsilon = epsilon
        self._delta = delta
        self._phi = phi
        # t = (1/epsilon) * ln(1/(phi * delta)); first 2t updates at rate 1.
        self._t = math.log(1.0 / (phi * delta)) / epsilon
        self._rate = 1
        self._next_boundary = 2.0 * self._t
        self._counts: dict[ItemId, float] = {}
        self._num_updates = 0
        self._rng = Xoroshiro128PlusPlus(seed)
        self.stats = OpStats()

    @property
    def num_active(self) -> int:
        """Entries currently stored."""
        return len(self._counts)

    @property
    def num_updates(self) -> int:
        """Unit updates processed."""
        return self._num_updates

    @property
    def sampling_rate(self) -> int:
        """Current rate ``r``: new items enter with probability ``1/r``."""
        return self._rate

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one unit update."""
        if weight != 1.0:
            raise InvalidUpdateError(
                f"StickySampling handles unit updates only, got {weight}"
            )
        self._num_updates += 1
        stats = self.stats
        stats.updates += 1
        if self._num_updates > self._next_boundary:
            self._rate *= 2
            self._next_boundary *= 2.0
            self._diminish()
        counts = self._counts
        current = counts.get(item)
        if current is not None:
            counts[item] = current + 1.0
            stats.hits += 1
        elif self._rng.randrange(self._rate) == 0:
            counts[item] = 1.0
            stats.inserts += 1

    def _diminish(self) -> None:
        """At a rate change, geometrically shrink every stored count."""
        stats = self.stats
        stats.decrements += 1
        stats.counters_scanned += len(self._counts)
        rng = self._rng
        survivors = {}
        freed = 0
        for item, count in self._counts.items():
            # Repeatedly toss an unbiased coin; diminish by one per tail.
            while count > 0 and rng.randrange(2) == 0:
                count -= 1.0
            if count > 0:
                survivors[item] = count
            else:
                freed += 1
        self._counts = survivors
        stats.counters_freed += freed

    def estimate(self, item: ItemId) -> float:
        """The stored count — raw, not scaled.

        Once an item is admitted every occurrence increments its counter,
        so the count underestimates the true frequency only by what was
        missed before admission and lost to diminishing —
        at most ``epsilon * n`` with probability ``1 - delta``.
        """
        return self._counts.get(item, 0.0)

    def heavy_hitters(self) -> dict[ItemId, float]:
        """Items with stored count at least ``(phi - epsilon) * n``."""
        threshold = (self._phi - self._epsilon) * self._num_updates
        return {
            item: count
            for item, count in self._counts.items()
            if count >= threshold
        }

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over stored ``(item, raw_count)`` pairs."""
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)
