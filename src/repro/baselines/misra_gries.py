"""The classic Misra-Gries algorithm for unit updates (Algorithm 1).

The 1982 original: ``k`` counters in a hash table; a hit increments, a
miss inserts while room remains, and a miss against a full table
decrements *every* counter by one, discarding those that reach zero.
Estimates satisfy ``0 <= f_i - f̂_i <= N/(k+1)`` (Lemma 1) and the tail
bound of Lemma 2.  Amortized O(1) per update because a decrement pass
requires k prior insertions to re-fill the table.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes
from repro.types import ItemId


class MisraGries(BatchUpdateMixin):
    """Algorithm 1: unit-weight Misra-Gries with ``k`` counters."""

    __slots__ = ("_k", "_counts", "_num_updates", "stats")

    def __init__(self, max_counters: int) -> None:
        if max_counters < 1:
            raise InvalidParameterError(
                f"max_counters must be at least 1, got {max_counters}"
            )
        self._k = max_counters
        self._counts: dict[ItemId, float] = {}
        self._num_updates = 0
        self.stats = OpStats()

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._k

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._counts)

    @property
    def num_updates(self) -> int:
        """Unit updates processed so far (the stream length ``n = N``)."""
        return self._num_updates

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one unit update; ``weight`` must be exactly 1.

        (The weighted extensions are separate algorithms — RTUC, RBMC,
        and the paper's SMED family.)
        """
        if weight != 1.0:
            raise InvalidUpdateError(
                f"MisraGries handles unit updates only, got weight {weight}"
            )
        self._num_updates += 1
        stats = self.stats
        stats.updates += 1
        counts = self._counts
        current = counts.get(item)
        if current is not None:
            counts[item] = current + 1.0
            stats.hits += 1
            return
        if len(counts) < self._k:
            counts[item] = 1.0
            stats.inserts += 1
            return
        # DecrementCounters(): every counter loses 1; zeros are freed.
        stats.decrements += 1
        stats.counters_scanned += len(counts)
        survivors = {}
        freed = 0
        for key, value in counts.items():
            if value > 1.0:
                survivors[key] = value - 1.0
            else:
                freed += 1
        self._counts = survivors
        stats.counters_freed += freed

    def estimate(self, item: ItemId) -> float:
        """``c(i)`` if assigned, else 0 — always an underestimate."""
        return self._counts.get(item, 0.0)

    def lower_bound(self, item: ItemId) -> float:
        """Same as the estimate: MG never overestimates."""
        return self._counts.get(item, 0.0)

    def upper_bound(self, item: ItemId) -> float:
        """``c(i) + n/(k+1)`` via Lemma 1's worst-case decrement count."""
        return self._counts.get(item, 0.0) + self._num_updates / (self._k + 1)

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over assigned ``(item, counter)`` pairs."""
        return iter(self._counts.items())

    def space_bytes(self) -> int:
        """Modeled footprint: one counter table."""
        return space_model_bytes("mg", self._k)

    def __len__(self) -> int:
        return len(self._counts)
