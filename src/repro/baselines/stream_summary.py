"""Metwally et al.'s Stream Summary structure: SSL, unit updates in O(1).

The doubly-linked "bucket list" implementation of Space Saving from the
original ICDT 2005 paper: buckets hold all counters sharing a value and
are kept sorted by value; promoting a counter moves its node to the
neighbouring bucket, so every unit update is O(1) worst case — no heap,
no amortization.  The cost is pointer-heavy storage (the paper cites
more than double the Misra-Gries footprint) and, crucially for this
paper, *no natural weighted extension*: a weight-Δ promotion would need
to jump an unbounded number of buckets (Section 1.3.5).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.baselines.batch import BatchUpdateMixin
from repro.errors import InvalidParameterError, InvalidUpdateError
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes
from repro.types import ItemId


class _Bucket:
    """A value class holding all counter nodes with the same count."""

    __slots__ = ("value", "nodes", "prev", "next")

    def __init__(self, value: float) -> None:
        self.value = value
        self.nodes: set["_Node"] = set()
        self.prev: Optional["_Bucket"] = None
        self.next: Optional["_Bucket"] = None


class _Node:
    """One counter: an item attached to its current bucket."""

    __slots__ = ("item", "bucket", "error")

    def __init__(self, item: ItemId, bucket: _Bucket, error: float) -> None:
        self.item = item
        self.bucket = bucket
        #: Metwally's epsilon(i): the count inherited at takeover, which
        #: upper-bounds this counter's overestimate.
        self.error = error


class StreamSummary(BatchUpdateMixin):
    """SSL: Space Saving via the Stream Summary bucket list (unit updates)."""

    __slots__ = ("_k", "_nodes", "_min_bucket", "_num_updates", "stats")

    def __init__(self, max_counters: int) -> None:
        if max_counters < 1:
            raise InvalidParameterError(
                f"max_counters must be at least 1, got {max_counters}"
            )
        self._k = max_counters
        self._nodes: dict[ItemId, _Node] = {}
        self._min_bucket: Optional[_Bucket] = None  # head of ascending list
        self._num_updates = 0
        self.stats = OpStats()

    @property
    def max_counters(self) -> int:
        """The configured number of counters ``k``."""
        return self._k

    @property
    def num_active(self) -> int:
        """Number of items currently assigned counters."""
        return len(self._nodes)

    @property
    def num_updates(self) -> int:
        """Unit updates processed so far."""
        return self._num_updates

    # -- bucket-list surgery ----------------------------------------------------

    def _unlink_if_empty(self, bucket: _Bucket) -> None:
        if bucket.nodes:
            return
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min_bucket = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev

    def _promote(self, node: _Node) -> None:
        """Move ``node`` from its bucket to the bucket of value+1."""
        old = node.bucket
        target_value = old.value + 1.0
        successor = old.next
        if successor is not None and successor.value == target_value:
            new_bucket = successor
        else:
            new_bucket = _Bucket(target_value)
            new_bucket.prev = old
            new_bucket.next = successor
            old.next = new_bucket
            if successor is not None:
                successor.prev = new_bucket
        old.nodes.discard(node)
        new_bucket.nodes.add(node)
        node.bucket = new_bucket
        self._unlink_if_empty(old)

    def _insert_at_value(self, item: ItemId, value: float, error: float) -> None:
        """Insert a brand-new counter node at ``value``."""
        bucket = self._min_bucket
        prev = None
        while bucket is not None and bucket.value < value:
            prev = bucket
            bucket = bucket.next
        if bucket is not None and bucket.value == value:
            target = bucket
        else:
            target = _Bucket(value)
            target.prev = prev
            target.next = bucket
            if prev is not None:
                prev.next = target
            else:
                self._min_bucket = target
            if bucket is not None:
                bucket.prev = target
        node = _Node(item, target, error)
        target.nodes.add(node)
        self._nodes[item] = node

    # -- the algorithm -------------------------------------------------------------

    def update(self, item: ItemId, weight: float = 1.0) -> None:
        """Process one unit update in O(1) worst-case time."""
        if weight != 1.0:
            raise InvalidUpdateError(
                "StreamSummary handles unit updates only (Section 1.3.5: the "
                f"structure does not extend to weighted updates); got {weight}"
            )
        self._num_updates += 1
        stats = self.stats
        stats.updates += 1
        node = self._nodes.get(item)
        if node is not None:
            self._promote(node)
            stats.hits += 1
            return
        if len(self._nodes) < self._k:
            self._insert_at_value(item, 1.0, 0.0)
            stats.inserts += 1
            return
        # Take over some counter in the minimum bucket.
        min_bucket = self._min_bucket
        assert min_bucket is not None and min_bucket.nodes
        victim = next(iter(min_bucket.nodes))
        del self._nodes[victim.item]
        victim.item = item
        victim.error = min_bucket.value
        self._nodes[item] = victim
        self._promote(victim)
        stats.inserts += 1

    # -- queries ----------------------------------------------------------------------

    def estimate(self, item: ItemId) -> float:
        """``c(i)`` if assigned, else the minimum counter value."""
        node = self._nodes.get(item)
        if node is not None:
            return node.bucket.value
        if len(self._nodes) < self._k or self._min_bucket is None:
            return 0.0
        return self._min_bucket.value

    def upper_bound(self, item: ItemId) -> float:
        """SS never underestimates."""
        return self.estimate(item)

    def lower_bound(self, item: ItemId) -> float:
        """``c(i) - epsilon(i)`` using the per-counter takeover error."""
        node = self._nodes.get(item)
        if node is None:
            return 0.0
        return node.bucket.value - node.error

    def items(self) -> Iterator[tuple[ItemId, float]]:
        """Iterate over assigned ``(item, counter)`` pairs."""
        for item, node in self._nodes.items():
            yield item, node.bucket.value

    def space_bytes(self) -> int:
        """Modeled footprint: table plus node/bucket pointers."""
        return space_model_bytes("ssl", self._k)

    def __len__(self) -> int:
        return len(self._nodes)
