"""An indexed binary min-heap, the substrate under SSH / MHE.

Space Saving needs three operations a plain heap lacks: find an
arbitrary item's entry (to increment it), increase a key in place, and
replace the minimum.  We therefore maintain an item -> heap-position
index alongside the value and item arrays.  Every sift step is counted
(``sift_steps``) because heap maintenance is exactly the O(log k) cost
the paper holds against MHE.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidParameterError
from repro.types import ItemId


class IndexedMinHeap:
    """Binary min-heap over ``(value, item)`` with item-position tracking."""

    __slots__ = ("_values", "_items", "_pos", "sift_steps")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._items: list[ItemId] = []
        self._pos: dict[ItemId, int] = {}
        #: Total sift (parent/child swap) steps performed.
        self.sift_steps = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, item: ItemId) -> bool:
        return item in self._pos

    def value_of(self, item: ItemId) -> Optional[float]:
        """Return the item's value, or ``None`` if absent."""
        position = self._pos.get(item)
        return None if position is None else self._values[position]

    def min_value(self) -> float:
        """The smallest value (the heap must be non-empty)."""
        if not self._values:
            raise InvalidParameterError("heap is empty")
        return self._values[0]

    def min_item(self) -> ItemId:
        """The item holding the smallest value."""
        if not self._items:
            raise InvalidParameterError("heap is empty")
        return self._items[0]

    # -- internal movement ----------------------------------------------------

    def _swap(self, a: int, b: int) -> None:
        values, items, pos = self._values, self._items, self._pos
        values[a], values[b] = values[b], values[a]
        items[a], items[b] = items[b], items[a]
        pos[items[a]] = a
        pos[items[b]] = b
        self.sift_steps += 1

    def _sift_up(self, index: int) -> None:
        values = self._values
        while index > 0:
            parent = (index - 1) >> 1
            if values[index] < values[parent]:
                self._swap(index, parent)
                index = parent
            else:
                return

    def _sift_down(self, index: int) -> None:
        values = self._values
        size = len(values)
        while True:
            left = 2 * index + 1
            if left >= size:
                return
            smallest = left
            right = left + 1
            if right < size and values[right] < values[left]:
                smallest = right
            if values[smallest] < values[index]:
                self._swap(index, smallest)
                index = smallest
            else:
                return

    # -- public mutators --------------------------------------------------------

    def push(self, item: ItemId, value: float) -> None:
        """Insert a new item (must be absent)."""
        if item in self._pos:
            raise InvalidParameterError(f"item {item} is already in the heap")
        index = len(self._values)
        self._values.append(value)
        self._items.append(item)
        self._pos[item] = index
        self._sift_up(index)

    def increase_key(self, item: ItemId, new_value: float) -> None:
        """Raise an existing item's value (values only grow in SS)."""
        position = self._pos.get(item)
        if position is None:
            raise InvalidParameterError(f"item {item} is not in the heap")
        if new_value < self._values[position]:
            raise InvalidParameterError(
                f"increase_key would lower {item}: "
                f"{self._values[position]} -> {new_value}"
            )
        self._values[position] = new_value
        self._sift_down(position)

    def replace_min(self, item: ItemId, value: float) -> ItemId:
        """Evict the minimum entry, install ``(item, value)``; return evictee.

        This is the SS takeover step: the new item inherits the root slot
        with ``value = old_min + delta`` and sifts down.
        """
        if not self._values:
            raise InvalidParameterError("heap is empty")
        if item in self._pos:
            raise InvalidParameterError(f"item {item} is already in the heap")
        evicted = self._items[0]
        del self._pos[evicted]
        self._items[0] = item
        self._values[0] = value
        self._pos[item] = 0
        self._sift_down(0)
        return evicted

    def pop_min(self) -> tuple[ItemId, float]:
        """Remove and return the minimum ``(item, value)``."""
        if not self._values:
            raise InvalidParameterError("heap is empty")
        item = self._items[0]
        value = self._values[0]
        del self._pos[item]
        last_value = self._values.pop()
        last_item = self._items.pop()
        if self._values:
            self._values[0] = last_value
            self._items[0] = last_item
            self._pos[last_item] = 0
            self._sift_down(0)
        return item, value

    def items(self) -> list[tuple[ItemId, float]]:
        """All ``(item, value)`` pairs in heap-array order."""
        return list(zip(self._items, self._values))

    def check_invariant(self) -> bool:
        """Verify the heap order and index consistency (for tests)."""
        values = self._values
        for index in range(1, len(values)):
            if values[index] < values[(index - 1) >> 1]:
                return False
        for item, position in self._pos.items():
            if self._items[position] != item:
                return False
        return len(self._pos) == len(self._values)
