"""Dispatch facade for the compiled hot-path kernels.

``repro._native._kernels`` (built by ``python setup.py build_ext
--inplace``) reimplements the interpreter-bound loops of the probing
tables, the batch grouper, and the ingest kernel in C.  This module
decides, per call site, whether the compiled path may serve a given
object — and the answer must be observably irrelevant: both paths
produce bit-identical layouts, estimates, serialized bytes, and
xoroshiro draw sequences (the golden-hash and differential-fuzz suites
run under both).

Dispatch rules
--------------
* ``REPRO_NATIVE=0`` in the environment forces the NumPy fallback;
  :func:`use_native` overrides either way at runtime (tests use it to
  build native-vs-fallback pairs in one process).
* Table kernels serve only the exact classes registered by the table
  modules (:func:`register_table`) — subclasses (e.g. the white-box
  layout tests' rigged tables) keep the Python paths — and only once a
  table is at its final length (``_insertion_log is None``); the
  adaptive-growth staging replays are left to the Python code that owns
  them.
* The ingest kernel additionally requires the stock
  ``SampleQuantilePolicy`` with the ``"auto"`` selector; that check
  lives in :mod:`repro.engine.kernel`, which owns the policy types.

This module deliberately imports nothing from the table or engine
layers, so they can import it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro._native import EXTRA_COMPILE_ARGS, kernels as _kernels

_MASK64 = (1 << 64) - 1
#: Seed-folding constant of :func:`repro.hashing.mixers.hash_u64`.
_GOLDEN = 0x9E3779B97F4A7C15

#: Default on/off state, captured from the environment at import.
_env_enabled = os.environ.get("REPRO_NATIVE", "1") != "0"
#: Runtime override installed by :func:`use_native`; ``None`` = env rules.
_forced: Optional[bool] = None

#: Exact table classes the kernels understand -> robinhood flag (0/1).
_TABLE_FLAVORS: dict[type, int] = {}


def available() -> bool:
    """True when the compiled extension imported successfully."""
    return _kernels is not None


def enabled() -> bool:
    """True when dispatch may choose the compiled path right now."""
    if _kernels is None:
        return False
    return _env_enabled if _forced is None else _forced


@contextmanager
def use_native(flag: bool) -> Iterator[None]:
    """Force the native path on or off within a ``with`` block."""
    global _forced
    previous = _forced
    _forced = flag
    try:
        yield
    finally:
        _forced = previous


def kernels_if_enabled() -> Any:
    """The kernels module when dispatch is on, else ``None``."""
    if _kernels is None:
        return None
    if _env_enabled if _forced is None else _forced:
        return _kernels
    return None


def register_table(cls: type, robinhood: int) -> None:
    """Declare ``cls`` (exactly — not subclasses) native-servable."""
    _TABLE_FLAVORS[cls] = robinhood


def table_flavor(cls: type) -> Optional[int]:
    """The robinhood flag for an exactly-registered class, else ``None``."""
    return _TABLE_FLAVORS.get(cls)


def table_kernels(store: Any) -> Optional[tuple[Any, int]]:
    """``(kernels, robinhood_flag)`` when ``store`` may go native.

    ``None`` when the extension is missing/disabled, the class is not
    exactly a registered one, or the table can still grow (its staged
    rehash machinery is Python-owned).
    """
    kernels = kernels_if_enabled()
    if kernels is None:
        return None
    flavor = _TABLE_FLAVORS.get(type(store))
    if flavor is None or store._insertion_log is not None:
        return None
    return kernels, flavor


def seed_mix(seed: int) -> int:
    """The pre-folded seed word ``hash_u64`` XORs between mixing rounds."""
    return (seed * _GOLDEN) & _MASK64


def runtime_metadata() -> dict[str, Any]:
    """Provenance block for bench JSON: which ingest path ran, and how built."""
    meta: dict[str, Any] = {
        "ingest_path": "native" if enabled() else "numpy",
        "native_available": available(),
    }
    if _kernels is not None:
        meta["native_compiler"] = _kernels.COMPILER
        meta["native_compile_args"] = " ".join(EXTRA_COMPILE_ARGS)
    return meta
