"""``ExperimentResults``: the memoized analysis layer over the run history.

Modeled on ``google/fuzzbench``'s ``analysis/experiment_results.py``:
one object wraps the experiment dataframe and every report artifact is
a **lazily-computed, memoized property**, so a template that only needs
the throughput trajectory never pays for the frontier and vice versa.

Data sources, combined into frames:

* every ``bench_runs/run-*.json`` matrix document (the append-only run
  history :mod:`repro.bench.matrix` grows), and
* the seed ``BENCH_ingest.json`` / ``BENCH_serve.json`` documents at the
  repo root — their gate figures become the earliest points of the
  throughput trajectory, so the rendered report shows the full arc from
  the first PR's numbers to the current run.

pandas is optional: frames are plain record lists with a pandas-like
access surface, and :meth:`Frame.to_pandas` upgrades to a real
``pandas.DataFrame`` when the library is installed (the container this
repo grows in does not ship it, so nothing here may require it).
"""

from __future__ import annotations

import glob
import os
from functools import cached_property
from typing import Any, Callable, Iterator

from repro.bench.io import load_json
from repro.bench.matrix import DEFAULT_RUNS_DIR, RUN_SCHEMA

#: Provenance keys every run document must carry to be trusted (the CI
#: round-trip gate asserts these survive the loader).
PROVENANCE_FIELDS = ("run_id", "git_hash", "timestamp_utc", "host", "metadata")


class Frame:
    """A minimal record frame: ordered rows of dicts, column access.

    Deliberately tiny — just what the analysis layer and the renderer
    consume — with :meth:`to_pandas` as the bridge to real dataframes
    where pandas exists.
    """

    def __init__(self, rows: list[dict[str, Any]]) -> None:
        self.rows = list(rows)

    # -- pandas-like surface ----------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.rows

    @property
    def columns(self) -> list[str]:
        """Union of row keys, in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def where(self, predicate: Callable[[dict], bool] | None = None, **eq: Any) -> "Frame":
        """Rows matching a predicate and/or column equality constraints."""
        out = []
        for row in self.rows:
            if predicate is not None and not predicate(row):
                continue
            if all(row.get(key) == value for key, value in eq.items()):
                out.append(row)
        return Frame(out)

    def sort(self, *keys: str, reverse: bool = False) -> "Frame":
        """A new frame sorted by the given columns (missing sorts first)."""
        def sort_key(row: dict) -> tuple:
            return tuple(
                (row.get(key) is not None, row.get(key)) for key in keys
            )

        return Frame(sorted(self.rows, key=sort_key, reverse=reverse))

    def unique(self, name: str) -> list[Any]:
        """Distinct values of one column, in first-appearance order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value)
        return list(seen)

    def to_pandas(self):
        """This frame as a ``pandas.DataFrame`` (pandas required)."""
        try:
            import pandas
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ImportError(
                "pandas is not installed; Frame.to_pandas needs it "
                "(the record-list surface works without)"
            ) from exc
        return pandas.DataFrame(self.rows)


class ExperimentResults:
    """Lazily-computed, memoized report properties over the run history.

    Usable directly as a template/render context: every property is
    computed on first access and cached (``functools.cached_property``),
    mirroring fuzzbench's report-generation pattern.
    """

    def __init__(
        self,
        runs_dir: str = DEFAULT_RUNS_DIR,
        repo_root: str = ".",
        experiment_name: str | None = None,
    ) -> None:
        self._runs_dir = runs_dir
        self._repo_root = repo_root
        self._name = experiment_name

    # -- raw documents -----------------------------------------------------

    @cached_property
    def run_documents(self) -> list[dict]:
        """Every parseable matrix run document, oldest first."""
        documents = []
        for path in sorted(glob.glob(os.path.join(self._runs_dir, "run-*.json"))):
            try:
                document = load_json(path)
            except (OSError, ValueError):
                continue  # torn/foreign file: the trajectory must survive it
            if document.get("schema") != RUN_SCHEMA:
                continue
            documents.append(document)
        documents.sort(key=lambda d: (d.get("timestamp_utc") or "", d.get("run_id") or ""))
        return documents

    @cached_property
    def ingest_document(self) -> dict | None:
        """The seed ``BENCH_ingest.json`` trajectory document, if present."""
        return self._load_root("BENCH_ingest.json")

    @cached_property
    def serve_document(self) -> dict | None:
        """The seed ``BENCH_serve.json`` trajectory document, if present."""
        return self._load_root("BENCH_serve.json")

    def _load_root(self, filename: str) -> dict | None:
        path = os.path.join(self._repo_root, filename)
        if not os.path.exists(path):
            return None
        try:
            return load_json(path)
        except (OSError, ValueError):
            return None

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        if self._name:
            return self._name
        if self.run_documents:
            return self.run_documents[-1]["run_id"]
        return "bench"

    @property
    def git_hash(self) -> str | None:
        """The latest run's repo commit (fuzzbench stamps the same way)."""
        if self.run_documents:
            return self.run_documents[-1].get("git_hash")
        return None

    @property
    def started(self) -> str | None:
        """Earliest run timestamp in the history."""
        if self.run_documents:
            return self.run_documents[0].get("timestamp_utc")
        return None

    @property
    def ended(self) -> str | None:
        """Latest run timestamp in the history."""
        if self.run_documents:
            return self.run_documents[-1].get("timestamp_utc")
        return None

    # -- frames ------------------------------------------------------------

    @cached_property
    def runs(self) -> Frame:
        """Every matrix cell of every run, with run provenance columns."""
        rows = []
        for document in self.run_documents:
            stamp = {
                "run_id": document.get("run_id"),
                "timestamp_utc": document.get("timestamp_utc"),
                "git_hash": document.get("git_hash"),
                "scale": document.get("scale"),
                "ingest_path": (document.get("metadata") or {}).get("ingest_path"),
            }
            for cell in document.get("cells", []):
                rows.append({**stamp, **cell})
        return Frame(rows)

    @cached_property
    def latest_cells(self) -> Frame:
        """The most recent run's cells only (the report's current state)."""
        if not self.run_documents:
            return Frame([])
        latest = self.run_documents[-1]["run_id"]
        return self.runs.where(run_id=latest)

    @cached_property
    def frontier(self) -> Frame:
        """Accuracy-vs-space points from the latest run, series-labeled.

        One series per ``policy/backend/growth`` at each skew, sorted by
        modeled space — exactly the frontier the FDCMSS comparisons plot
        (error shrinking as counters grow).
        """
        rows = []
        for cell in self.latest_cells.sort("space_bytes", "k"):
            rows.append(
                {
                    "series": (
                        f"{cell['policy']}/{cell['backend']}/{cell['growth']}"
                        f"@a{cell['alpha']}"
                    ),
                    "policy": cell["policy"],
                    "backend": cell["backend"],
                    "growth": cell["growth"],
                    "alpha": cell["alpha"],
                    "k": cell["k"],
                    "space_bytes": cell["space_bytes"],
                    "max_error": cell["max_error"],
                    "rel_error": cell["rel_error"],
                    "updates_per_sec": cell["updates_per_sec"],
                }
            )
        return Frame(rows)

    @cached_property
    def trajectory(self) -> Frame:
        """Throughput across history: seed BENCH documents, then runs.

        The seed points come first — ``BENCH_ingest.json``'s canonical
        columnar batch rate and ``BENCH_serve.json``'s 4-producer
        pipeline rate — then one point per matrix run and backend (the
        best cell at the canonical skew), so a regression shows up as a
        dip at the right edge of the rendered chart.
        """
        rows = []
        ingest = self.ingest_document
        if ingest is not None:
            gates = ingest.get("gates", {})
            rate = gates.get("columnar_batch_per_sec_alpha1.05")
            if rate is not None:
                rows.append(
                    {
                        "source": "BENCH_ingest.json",
                        "run_id": "seed:ingest",
                        "timestamp_utc": None,
                        "git_hash": None,
                        "metric": "columnar_batch_per_sec",
                        "updates_per_sec": rate,
                        "ingest_path": (ingest.get("metadata") or {}).get(
                            "ingest_path"
                        ),
                    }
                )
        serve = self.serve_document
        if serve is not None:
            gates = serve.get("gates", {})
            rate = gates.get("pipeline_4p_updates_per_sec")
            if rate is not None:
                rows.append(
                    {
                        "source": "BENCH_serve.json",
                        "run_id": "seed:serve",
                        "timestamp_utc": None,
                        "git_hash": None,
                        "metric": "pipeline_4p_updates_per_sec",
                        "updates_per_sec": rate,
                        "ingest_path": (serve.get("metadata") or {}).get(
                            "ingest_path"
                        ),
                    }
                )
        for document in self.run_documents:
            cells = Frame(document.get("cells", []))
            alphas = cells.unique("alpha")
            canonical = 1.05 if 1.05 in alphas else (alphas[0] if alphas else None)
            for backend in cells.unique("backend"):
                candidates = cells.where(backend=backend, alpha=canonical)
                if candidates.empty:
                    continue
                best = max(candidates, key=lambda c: c["updates_per_sec"])
                rows.append(
                    {
                        "source": "bench_runs",
                        "run_id": document.get("run_id"),
                        "timestamp_utc": document.get("timestamp_utc"),
                        "git_hash": document.get("git_hash"),
                        "metric": f"matrix_{backend}_updates_per_sec",
                        "updates_per_sec": best["updates_per_sec"],
                        "ingest_path": (document.get("metadata") or {}).get(
                            "ingest_path"
                        ),
                    }
                )
        return Frame(rows)

    @cached_property
    def speedups(self) -> Frame:
        """Batch/native speedup table from the seed ingest trajectory.

        Per backend: the best batch-vs-scalar speedup at the canonical
        skew plus the absolute batch rate, stamped with the ingest path
        (native C kernels vs NumPy fallback) the numbers were measured
        on — the two are not comparable, so the column must be shown.
        """
        ingest = self.ingest_document
        if ingest is None:
            return Frame([])
        ingest_path = (ingest.get("metadata") or {}).get("ingest_path")
        rows = []
        cells = Frame(ingest.get("rows", []))
        for backend in cells.unique("backend"):
            candidates = cells.where(backend=backend, alpha=1.05)
            if candidates.empty:
                candidates = cells.where(backend=backend)
            if candidates.empty:
                continue
            best = max(candidates, key=lambda c: c.get("batch_speedup") or 0.0)
            rows.append(
                {
                    "backend": backend,
                    "batch_speedup": best.get("batch_speedup"),
                    "batch_per_sec": best.get("batch_per_sec"),
                    "scalar_per_sec": best.get("scalar_per_sec"),
                    "adaptive_per_sec": best.get("adaptive_per_sec"),
                    "ingest_path": ingest_path,
                }
            )
        return Frame(rows)

    @cached_property
    def summary(self) -> dict[str, Any]:
        """Header facts for the rendered report."""
        latest = self.run_documents[-1] if self.run_documents else None
        return {
            "name": self.name,
            "git_hash": self.git_hash,
            "started": self.started,
            "ended": self.ended,
            "num_runs": len(self.run_documents),
            "num_cells": len(self.runs),
            "scale": latest.get("scale") if latest else None,
            "host": (latest.get("host") or {}) if latest else {},
            "ingest_path": (
                (latest.get("metadata") or {}).get("ingest_path")
                if latest
                else None
            ),
            "has_seed_ingest": self.ingest_document is not None,
            "has_seed_serve": self.serve_document is not None,
        }

    def validate_provenance(self, document: dict) -> list[str]:
        """Missing provenance fields of one run document (empty = good)."""
        return [key for key in PROVENANCE_FIELDS if not document.get(key)]
