"""The declared experiment matrix behind ``python -m repro.bench report``.

Modeled on ``google/fuzzbench``'s experiment pipeline: a *declared*
matrix (backend × decrement policy × Zipf skew × k × growth mode) is
executed cell by cell, and every execution persists **one JSON document
per run** under ``bench_runs/`` — stamped with git hash, UTC timestamp,
host/CPU and :func:`repro.native.runtime_metadata` provenance — so the
run history is an append-only trajectory the analysis layer
(:mod:`repro.bench.results`) can load as a frame and the renderer
(:mod:`repro.bench.render`) can plot across PRs.

Each cell feeds the Section 4.5 Zipf workload (shared with the ingest
profile via :func:`repro.bench.figures.profile_arrays` — the identical
update sequence, materialized once) through ``update_batch`` with the
garbage collector fenced off, samples **repeats × median** wall-clock
(single shots flake; medians gate), and records accuracy against the
exact counter plus the Section 2.3.3 space model — the two axes of the
accuracy-vs-space frontier.
"""

from __future__ import annotations

import os
import platform
import socket
from dataclasses import asdict, dataclass, field
from typing import Iterator

from repro.bench.harness import (
    BenchConfig,
    repeat_median,
    time_feed_batches,
    zipf_exact,
)
from repro.bench.io import atomic_write_json, git_revision, utc_timestamp
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import SampleQuantilePolicy
from repro.metrics.accuracy import max_error
from repro.metrics.space import space_model_bytes
from repro.selection.sampling import DEFAULT_SAMPLE_SIZE

#: Schema tag every run document carries; bump on breaking layout change.
RUN_SCHEMA = "repro.bench.matrix/v1"

#: Default directory for run documents, relative to the working dir.
DEFAULT_RUNS_DIR = "bench_runs"

#: Decrement-policy quantiles the matrix sweeps (paper names).
POLICY_QUANTILES = {"smed": 0.5, "smin": 0.0}


@dataclass(frozen=True)
class MatrixSpec:
    """One declared experiment matrix (the cross product of its axes)."""

    backends: tuple[str, ...] = ("dict", "probing", "robinhood", "columnar")
    policies: tuple[str, ...] = ("smed", "smin")
    alphas: tuple[float, ...] = (0.8, 1.05, 1.3)
    k_values: tuple[int, ...] = field(default=())  # empty = config.k_values
    growth_modes: tuple[str, ...] = ("fixed", "adaptive")
    repeats: int = 3
    batch_size: int = 4_096

    def resolve_k(self, config: BenchConfig) -> tuple[int, ...]:
        return self.k_values or config.k_values

    def cells(self, config: BenchConfig) -> Iterator[dict]:
        """Every cell of the cross product, in declaration order."""
        for policy in self.policies:
            if policy not in POLICY_QUANTILES:
                raise ValueError(f"unknown matrix policy {policy!r}")
            for backend in self.backends:
                for alpha in self.alphas:
                    for k in self.resolve_k(config):
                        for growth in self.growth_modes:
                            yield {
                                "policy": policy,
                                "backend": backend,
                                "alpha": alpha,
                                "k": k,
                                "growth": growth,
                            }

    def num_cells(self, config: BenchConfig) -> int:
        return (
            len(self.policies)
            * len(self.backends)
            * len(self.alphas)
            * len(self.resolve_k(config))
            * len(self.growth_modes)
        )


#: The full matrix (overnight scale) and the CI-sized ``--quick`` subset.
FULL_MATRIX = MatrixSpec()
QUICK_MATRIX = MatrixSpec(
    backends=("probing", "columnar"),
    policies=("smed",),
    alphas=(1.05,),
    growth_modes=("fixed", "adaptive"),
    repeats=3,
)


def matrix_for_scale(scale: str) -> MatrixSpec:
    """The declared matrix for a workload scale (``quick`` subsets)."""
    if scale == "quick":
        return QUICK_MATRIX
    return FULL_MATRIX


def _build_sketch(cell: dict, seed: int) -> FrequentItemsSketch:
    return FrequentItemsSketch(
        cell["k"],
        policy=SampleQuantilePolicy(
            POLICY_QUANTILES[cell["policy"]], DEFAULT_SAMPLE_SIZE
        ),
        backend=cell["backend"],
        seed=seed,
        growth=cell["growth"],
    )


def run_cell(cell: dict, config: BenchConfig, spec: MatrixSpec) -> dict:
    """Execute one matrix cell: median-timed ingest + accuracy + space.

    The feed is deterministic (seeded workload, seeded sketch), so every
    repeat reproduces the identical final state; the last repeat's
    sketch answers the accuracy query while the median of the sampled
    wall-clocks carries the throughput.
    """
    from repro.bench.figures import profile_arrays

    all_items, all_weights = profile_arrays(config, cell["alpha"])
    n = len(all_items)
    batch = spec.batch_size
    batches = [
        (all_items[lo : lo + batch], all_weights[lo : lo + batch])
        for lo in range(0, n, batch)
    ]
    sketches: list[FrequentItemsSketch] = []

    def one_run() -> float:
        sketch = _build_sketch(cell, config.seed)
        seconds = time_feed_batches(sketch, batches)
        sketches.append(sketch)
        return seconds

    median_seconds, samples = repeat_median(one_run, spec.repeats)
    sketch = sketches[-1]
    exact = zipf_exact(
        config.num_updates, config.unique_sources, cell["alpha"], config.seed
    )
    error = max_error(sketch, exact)
    total_weight = exact.total_weight
    return {
        **cell,
        "updates": n,
        "repeats": spec.repeats,
        "batch_size": batch,
        "seconds_median": median_seconds,
        "seconds_samples": samples,
        "updates_per_sec": n / median_seconds if median_seconds else float("inf"),
        "max_error": error,
        "rel_error": error / total_weight if total_weight else 0.0,
        "space_bytes": space_model_bytes(cell["policy"], cell["k"]),
        "decrements": sketch.stats.decrements,
    }


def host_info() -> dict:
    """Host/CPU provenance for a run document."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def run_provenance() -> dict:
    """Everything that must travel with a run's numbers to trust them."""
    from repro import native

    return {
        **git_revision(),
        "timestamp_utc": utc_timestamp(),
        "host": host_info(),
        "metadata": native.runtime_metadata(),
    }


def run_matrix(
    config: BenchConfig,
    spec: MatrixSpec,
    scale: str = "quick",
    runs_dir: str | None = DEFAULT_RUNS_DIR,
    progress=None,
) -> tuple[dict, str | None]:
    """Execute ``spec`` and persist one stamped run document.

    Returns ``(document, path)``; ``path`` is ``None`` when ``runs_dir``
    is ``None`` (persistence disabled — tests exercising only the
    sweep).  The
    document is written atomically, so a crash mid-run never leaves a
    torn JSON for the results loader to trip over.
    """
    provenance = run_provenance()
    stamp = provenance["timestamp_utc"].replace(":", "").replace("-", "")
    run_id = f"{stamp}-{provenance['git_hash'][:8]}"
    cells = []
    total = spec.num_cells(config)
    for index, cell in enumerate(spec.cells(config)):
        if progress is not None:
            progress(
                f"[{index + 1}/{total}] {cell['policy']}/{cell['backend']}"
                f" alpha={cell['alpha']} k={cell['k']} {cell['growth']}"
            )
        cells.append(run_cell(cell, config, spec))
    document = {
        "schema": RUN_SCHEMA,
        "bench": "matrix",
        "run_id": run_id,
        "scale": scale,
        "num_updates": config.num_updates,
        "unique_sources": config.unique_sources,
        "seed": config.seed,
        **provenance,
        "matrix": asdict(spec),
        "cells": cells,
    }
    path = None
    if runs_dir is not None:
        os.makedirs(runs_dir, exist_ok=True)
        path = os.path.join(runs_dir, f"run-{run_id}.json")
        atomic_write_json(path, document)
    return document, path
