"""Experiment definitions: one function per paper figure/table.

Each function returns :class:`~repro.bench.report.ResultTable` objects
whose rows are the series the corresponding figure plots (or the claims
the text states).  Shared runs are memoized so ``fig1``, ``fig2`` and
``claims`` reuse one sweep.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.baselines.factory import (
    make_algorithm,
    make_med,
    make_quantile_variant,
    make_smed,
)
from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.merge_prior import ach13_merge, hoa61_merge
from repro.bench.harness import (
    BenchConfig,
    feed_stream,
    num_batched_updates,
    packet_exact,
    packet_stream,
    time_call,
    time_feed,
    time_feed_batches,
    zipf_weighted_batches,
    zipf_weighted_stream,
)
from repro.bench.report import ResultTable
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.policies import GlobalMinPolicy, SampleQuantilePolicy
from repro.extensions.rap import RandomAdmissionSpaceSaving
from repro.metrics.accuracy import max_error, max_underestimate
from repro.metrics.space import (
    counters_for_equal_space,
    merge_scratch_bytes,
    space_model_bytes,
)
from repro.streams.adversarial import rbmc_killer_stream
from repro.streams.exact import ExactCounter
from repro.streams.uniform import uniform_weighted_stream

#: The four algorithms of Figures 1 and 2, in the paper's order.
FOUR_ALGORITHMS = ("SMED", "SMIN", "RBMC", "MHE")

_SWEEP_CACHE: dict[tuple, list[dict]] = {}


def _four_algorithm_sweep(config: BenchConfig, backend: str) -> list[dict]:
    """Run SMED/SMIN/RBMC/MHE over the k sweep, equal-counters and equal-space.

    One record per (panel, algorithm, k): seconds, throughput, max error,
    decrement statistics, modeled space.
    """
    key = (id(config), config.num_updates, config.seed, backend)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    stream = packet_stream(config)
    exact = packet_exact(config)
    records = []
    for k in config.k_values:
        budget = space_model_bytes("smed", k)
        for name in FOUR_ALGORITHMS:
            for panel in ("equal_counters", "equal_space"):
                if panel == "equal_counters":
                    actual_k = k
                else:
                    actual_k = counters_for_equal_space(name.lower(), budget)
                algorithm = make_algorithm(name, actual_k, seed=config.seed, backend=backend)
                seconds = time_feed(algorithm, stream)
                records.append(
                    {
                        "panel": panel,
                        "algorithm": name,
                        "k": k,
                        "actual_k": actual_k,
                        "seconds": seconds,
                        "updates_per_sec": len(stream) / seconds if seconds else float("inf"),
                        "max_error": max_error(algorithm, exact),
                        "decrements": algorithm.stats.decrements,
                        "scan_per_update": algorithm.stats.amortized_scan_cost(),
                        "heap_sifts": algorithm.stats.heap_sifts,
                        "space_bytes": space_model_bytes(name.lower(), actual_k),
                    }
                )
    _SWEEP_CACHE[key] = records
    return records


def _panel_table(
    records: list[dict], panel: str, title: str, value_columns: list[str]
) -> ResultTable:
    table = ResultTable(title, ["algorithm", "k", "actual_k"] + value_columns)
    for record in records:
        if record["panel"] != panel:
            continue
        table.add_row(
            algorithm=record["algorithm"],
            k=record["k"],
            actual_k=record["actual_k"],
            **{column: record[column] for column in value_columns},
        )
    return table


def fig1_runtime(
    config: BenchConfig, backend: str = "dict"
) -> tuple[ResultTable, ResultTable]:
    """Figure 1: runtime of the four algorithms, both comparison panels."""
    records = _four_algorithm_sweep(config, backend)
    columns = ["seconds", "updates_per_sec", "decrements", "scan_per_update", "heap_sifts"]
    equal_space = _panel_table(
        records, "equal_space",
        "Figure 1 (top): runtime, equal space budget per k", columns,
    )
    equal_counters = _panel_table(
        records, "equal_counters",
        "Figure 1 (bottom): runtime, equal number of counters", columns,
    )
    return equal_space, equal_counters


def fig2_error(
    config: BenchConfig, backend: str = "dict"
) -> tuple[ResultTable, ResultTable]:
    """Figure 2: maximum point-query error, both comparison panels."""
    records = _four_algorithm_sweep(config, backend)
    columns = ["max_error", "space_bytes"]
    equal_space = _panel_table(
        records, "equal_space",
        "Figure 2 (top): maximum error, equal space budget per k", columns,
    )
    equal_counters = _panel_table(
        records, "equal_counters",
        "Figure 2 (bottom): maximum error, equal number of counters", columns,
    )
    return equal_space, equal_counters


def claims_table(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """The Section 4.3 in-text claims: measured ratio ranges vs the paper's."""
    records = _four_algorithm_sweep(config, backend)
    equal_space = [r for r in records if r["panel"] == "equal_space"]

    def ratios(numerator: str, denominator: str, column: str) -> list[float]:
        values = []
        for k in config.k_values:
            top = next(
                r[column] for r in equal_space if r["algorithm"] == numerator and r["k"] == k
            )
            bottom = next(
                r[column] for r in equal_space if r["algorithm"] == denominator and r["k"] == k
            )
            if bottom:
                values.append(top / bottom)
        return values

    table = ResultTable(
        "Section 4.3 claims: equal-space ratio ranges (measured vs paper)",
        ["claim", "paper_range", "measured_min", "measured_max"],
    )
    claims = [
        ("MHE time / SMED time", "5.5x - 8.7x", ratios("MHE", "SMED", "seconds")),
        ("SMIN time / SMED time", "6.5x - 30x", ratios("SMIN", "SMED", "seconds")),
        ("RBMC time / SMED time", "20x - 70x", ratios("RBMC", "SMED", "seconds")),
        ("SMED err / MHE err", "1.18x - 1.29x", ratios("SMED", "MHE", "max_error")),
        ("SMED err / SMIN err", "<= 2.5x", ratios("SMED", "SMIN", "max_error")),
        ("MHE err / SMIN err", "1.6x - 1.8x", ratios("MHE", "SMIN", "max_error")),
        ("RBMC time / SMIN time", "~2x", ratios("RBMC", "SMIN", "seconds")),
    ]
    for name, paper_range, values in claims:
        table.add_row(
            claim=name,
            paper_range=paper_range,
            measured_min=min(values) if values else float("nan"),
            measured_max=max(values) if values else float("nan"),
        )
    return table


def fig3_quantile_tradeoff(
    config: BenchConfig, backend: str = "dict"
) -> ResultTable:
    """Figure 3: time and max error vs the decrement quantile, per k."""
    stream = packet_stream(config)
    exact = packet_exact(config)
    table = ResultTable(
        "Figure 3: decrement-quantile tradeoff (0 = SMIN, 50 = SMED)",
        ["k", "quantile_pct", "seconds", "max_error", "decrements"],
    )
    # The paper sweeps every k; two mid-range k keep the quick scale fast.
    for k in config.k_values[-2:]:
        for percent in config.quantiles:
            sketch = make_quantile_variant(
                k, percent / 100.0, seed=config.seed, backend=backend
            )
            seconds = time_feed(sketch, stream)
            table.add_row(
                k=k,
                quantile_pct=percent,
                seconds=seconds,
                max_error=max_error(sketch, exact),
                decrements=sketch.stats.decrements,
            )
    return table


def fig4_merge(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """Figure 4: merge throughput of Algorithm 5 vs the prior procedures.

    ``config.merge_pairs`` sketch pairs are filled from the Section 4.5
    workload (Zipf alpha = 1.05 identifiers, weights uniform on
    [1, 10000]) and merged with each procedure; inputs are copied outside
    the timed region so every procedure sees identical operands.
    """
    table = ResultTable(
        "Figure 4: merge speed (50 pairs in the paper; "
        f"{config.merge_pairs} here)",
        [
            "k",
            "procedure",
            "seconds",
            "merges_per_sec",
            "mean_max_error",
            "scratch_bytes",
        ],
    )
    for k in config.k_values:
        pairs = []
        exacts = []
        updates_per_sketch = config.merge_updates_per_sketch_factor * k
        for pair_index in range(config.merge_pairs):
            sketches = []
            pair_exact = ExactCounter()
            for side in range(2):
                seed = config.seed + 1000 * pair_index + side
                stream = zipf_weighted_stream(
                    updates_per_sketch, universe=50 * k, alpha=1.05, seed=seed
                )
                sketch = make_smed(k, seed=seed, backend=backend)
                feed_stream(sketch, stream)
                pair_exact.update_all(stream)
                sketches.append(sketch)
            pairs.append(tuple(sketches))
            exacts.append(pair_exact)

        procedures: list[tuple[str, Callable]] = [
            ("ours(Alg5)", None),
            ("Hoa61", hoa61_merge),
            ("ACH+13", ach13_merge),
        ]
        for name, procedure in procedures:
            if procedure is None:
                # Algorithm 5 mutates its left operand: copy outside timing.
                operands = [(a.copy(), b) for a, b in pairs]
                start = time.perf_counter()
                merged = [a.merge(b) for a, b in operands]
                seconds = time.perf_counter() - start
            else:
                start = time.perf_counter()
                merged = [procedure(a, b) for a, b in pairs]
                seconds = time.perf_counter() - start
            errors = [
                max_error(result, exact) for result, exact in zip(merged, exacts)
            ]
            table.add_row(
                k=k,
                procedure=name,
                seconds=seconds,
                merges_per_sec=len(pairs) / seconds if seconds else float("inf"),
                mean_max_error=sum(errors) / len(errors),
                scratch_bytes=merge_scratch_bytes(
                    "ours" if procedure is None else name.replace("+", "").lower(), k
                ),
            )
    return table


def space_table(
    k_values: tuple[int, ...] = (1024, 3072, 4096, 12288, 16384, 49152)
) -> ResultTable:
    """The Section 2.3.3 / 4.3 / 4.5 space accounting.

    The paper's exact "24k bytes" holds when ``4k/3`` is a power of two
    (k = 3 * 2^m, e.g. 3072, 12288, 49152 — and the paper's own 24,576);
    other k pay the next-power-of-two rounding, which the table shows.
    """
    table = ResultTable(
        "Space models (bytes): sketch footprints and merge scratch",
        ["k", "smed_smin_rbmc", "med", "mhe", "ssl", "bytes_per_counter_ours",
         "merge_scratch_ours", "merge_scratch_prior"],
    )
    for k in k_values:
        ours = space_model_bytes("smed", k)
        table.add_row(
            k=k,
            smed_smin_rbmc=ours,
            med=space_model_bytes("med", k),
            mhe=space_model_bytes("mhe", k),
            ssl=space_model_bytes("ssl", k),
            bytes_per_counter_ours=ours / k,
            merge_scratch_ours=merge_scratch_bytes("ours", k),
            merge_scratch_prior=merge_scratch_bytes("ach13", k),
        )
    return table


def context_table(config: BenchConfig) -> ResultTable:
    """Counter-based vs sketch/quantile classes (the Section 1.3 premise).

    Every competitor gets (approximately) the byte budget of SMED at the
    middle k of the sweep.
    """
    stream = packet_stream(config)
    exact = packet_exact(config)
    k = config.k_values[len(config.k_values) // 2]
    budget = space_model_bytes("smed", k)

    smed = make_smed(k, seed=config.seed)
    # CountMin/CountSketch: depth 5, width to fill the same budget.
    depth = 5
    width = 1
    while 8 * depth * (width * 2) <= budget:
        width *= 2
    competitors = [
        ("SMED (counter)", smed),
        ("CountMin (sketch)", CountMinSketch(depth, width, seed=config.seed)),
        ("CountMin-CU (sketch)", CountMinSketch(depth, width, seed=config.seed, conservative=True)),
        ("CountSketch (sketch)", CountSketch(depth, width, seed=config.seed)),
        ("LossyCounting (quantile)", LossyCounting(epsilon=1.0 / k)),
    ]
    table = ResultTable(
        f"Context: algorithm classes at ~{budget:,} bytes (k={k} for SMED)",
        ["algorithm", "seconds", "max_error", "space_bytes"],
    )
    for name, algorithm in competitors:
        seconds = time_feed(algorithm, stream)
        space = (
            algorithm.space_bytes()
            if hasattr(algorithm, "space_bytes")
            else budget
        )
        table.add_row(
            algorithm=name,
            seconds=seconds,
            max_error=max_error(algorithm, exact),
            space_bytes=space,
        )
    return table


def ablation_policies(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """Decrement-policy ablation: SMED vs MED vs global-min vs RAP."""
    stream = packet_stream(config)
    exact = packet_exact(config)
    k = config.k_values[len(config.k_values) // 2]
    algorithms = [
        ("SMED (sampled median)", make_smed(k, seed=config.seed, backend=backend)),
        ("MED (exact k/2-th)", make_med(k, seed=config.seed, backend=backend)),
        (
            "GMIN (exact min)",
            FrequentItemsSketch(k, policy=GlobalMinPolicy(), backend=backend, seed=config.seed),
        ),
        ("RAP (sampled-min takeover)", RandomAdmissionSpaceSaving(k, sample_size=2, seed=config.seed)),
    ]
    table = ResultTable(
        f"Ablation: decrement policy at k={k}",
        ["policy", "seconds", "max_error", "decrements", "scan_per_update"],
    )
    for name, algorithm in algorithms:
        seconds = time_feed(algorithm, stream)
        table.add_row(
            policy=name,
            seconds=seconds,
            max_error=max_error(algorithm, exact),
            decrements=algorithm.stats.decrements,
            scan_per_update=algorithm.stats.amortized_scan_cost(),
        )
    return table


def ablation_sample_size(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """Sample-size (ℓ) ablation for the SMED estimator (Section 2.3.2)."""
    stream = packet_stream(config)
    exact = packet_exact(config)
    k = config.k_values[-1]
    table = ResultTable(
        f"Ablation: sample size ell at k={k} (paper fixes ell=1024)",
        ["ell", "seconds", "max_error", "decrements"],
    )
    for ell in (8, 32, 128, 512, 1024):
        sketch = FrequentItemsSketch(
            k,
            policy=SampleQuantilePolicy(0.5, ell),
            backend=backend,
            seed=config.seed,
        )
        seconds = time_feed(sketch, stream)
        table.add_row(
            ell=ell,
            seconds=seconds,
            max_error=max_error(sketch, exact),
            decrements=sketch.stats.decrements,
        )
    return table


def ablation_backend(config: BenchConfig) -> ResultTable:
    """Counter-store backend ablation: Section 2.3.3 table vs builtin dict."""
    stream = packet_stream(config)
    exact = packet_exact(config)
    table = ResultTable(
        "Ablation: probing table (paper layout) vs Robin Hood vs CPython dict",
        ["backend", "k", "seconds", "max_error", "probes_per_update"],
    )
    for k in config.k_values[-2:]:
        for backend in ("probing", "robinhood", "dict"):
            sketch = make_smed(k, seed=config.seed, backend=backend)
            seconds = time_feed(sketch, stream)
            probes = (
                sketch._store.probe_count / len(stream)
                if backend != "dict"
                else float("nan")
            )
            table.add_row(
                backend=backend,
                k=k,
                seconds=seconds,
                max_error=max_error(sketch, exact),
                probes_per_update=probes,
            )
    return table


def batch_throughput_table(config: BenchConfig) -> ResultTable:
    """Scalar vs batched ingestion across counter-store backends.

    The Section 4.5 Zipf workload (α = 1.05, weights U[1, 10000]) is fed
    to the paper's sketch twice per backend — once through the per-item
    ``update`` loop, once through ``update_batch`` on the same array
    batches — and the resulting state is asserted identical, so the
    table measures packaging, not semantics.  ``batch_speedup`` is the
    per-backend batch/scalar throughput ratio; ``vs_best_scalar``
    compares the batch path against the *fastest scalar backend*, the
    honest headline number.
    """
    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    stream = zipf_weighted_stream(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    n = num_batched_updates(batches)
    k = config.k_values[-1]
    # Warm-up: one small feed per path pulls NumPy's lazily imported
    # submodules (np.insert -> numpy.ma, ...) out of the timed regions.
    warm_items, warm_weights = batches[0]
    warmup = FrequentItemsSketch(max(2, k // 8), backend="columnar", seed=0)
    warmup.update_batch(warm_items[:256], warm_weights[:256])
    table = ResultTable(
        f"Batch ingestion engine: scalar vs batched updates/sec "
        f"(Zipf 1.05, k={k})",
        [
            "backend", "k", "scalar_sec", "batch_sec",
            "scalar_per_sec", "batch_per_sec", "batch_speedup",
            "vs_best_scalar",
        ],
    )
    results = []
    for backend in ("dict", "probing", "robinhood", "columnar"):
        scalar = FrequentItemsSketch(k, backend=backend, seed=config.seed)
        scalar_seconds = time_feed(scalar, stream)
        batched = FrequentItemsSketch(k, backend=backend, seed=config.seed)
        batch_seconds = time_feed_batches(batched, batches)
        if scalar.to_bytes() != batched.to_bytes():  # pragma: no cover
            raise AssertionError(
                f"scalar/batch divergence on backend {backend!r}"
            )
        results.append((backend, scalar_seconds, batch_seconds))
    best_scalar = min(seconds for _backend, seconds, _batch in results)
    for backend, scalar_seconds, batch_seconds in results:
        table.add_row(
            backend=backend,
            k=k,
            scalar_sec=scalar_seconds,
            batch_sec=batch_seconds,
            scalar_per_sec=n / scalar_seconds,
            batch_per_sec=n / batch_seconds,
            batch_speedup=scalar_seconds / batch_seconds,
            vs_best_scalar=best_scalar / batch_seconds,
        )
    return table


def decay_throughput_table(config: BenchConfig) -> ResultTable:
    """Kernel-routed batch ingest vs the scalar loop for the engine consumers.

    The two time-aware consumers of the shared engine — the sliding
    window (one kernel per slice) and the exponential time-fading sketch
    (decay schedule over one kernel) — are fed the Section 4.5 Zipf
    workload twice per backend: once through their per-item ``update``
    loop and once through the kernel's segmented ``update_batch`` path,
    with the slice/tick boundary placed at every batch in both runs.
    Final kernel state is asserted identical, so ``batch_speedup``
    measures packaging, not semantics.  The acceptance gate (enforced in
    ``benchmarks/bench_decay_throughput.py``) is >= 3x on the columnar
    backend for both consumers.
    """
    import numpy as np

    from repro.extensions.decayed import DecayedFrequentItemsSketch
    from repro.extensions.windowed import SlidingWindowHeavyHitters

    source = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    # Re-chunk the workload into 8 time slices so the slice/tick
    # boundaries genuinely interleave with ingest at every scale.
    all_items = np.concatenate([items for items, _weights in source])
    all_weights = np.concatenate([weights for _items, weights in source])
    slice_len = max(1, len(all_items) // 8)
    batches = [
        (all_items[start : start + slice_len],
         all_weights[start : start + slice_len])
        for start in range(0, len(all_items), slice_len)
    ]
    # The scalar loops consume pre-materialized Python pairs — the same
    # methodology as the batch table's feed_stream — so timings measure
    # sketch work, not NumPy scalar-boxing overhead.
    scalar_slices = [
        list(zip(items.tolist(), weights.tolist())) for items, weights in batches
    ]
    n = num_batched_updates(batches)
    k = config.k_values[-1]
    # Warm-up pulls NumPy's lazily imported submodules out of the timed
    # regions.
    warmup = DecayedFrequentItemsSketch(max(2, k // 8), half_life=1.0, seed=0)
    warmup.update_batch(all_items[:256], all_weights[:256])

    def windowed_pair(backend: str):
        return (
            SlidingWindowHeavyHitters(k, 4, backend=backend, seed=config.seed),
            SlidingWindowHeavyHitters(k, 4, backend=backend, seed=config.seed),
        )

    def decayed_pair(backend: str):
        # A whole half-life per tick keeps the ingest scale a power of
        # two, so scaled weights stay exactly representable and the
        # scalar/batch equality check below is exact at any scale.
        return (
            DecayedFrequentItemsSketch(
                k, half_life=1.0, backend=backend, seed=config.seed
            ),
            DecayedFrequentItemsSketch(
                k, half_life=1.0, backend=backend, seed=config.seed
            ),
        )

    def boundary(consumer) -> None:
        if isinstance(consumer, SlidingWindowHeavyHitters):
            consumer.advance()
        else:
            consumer.tick()

    def final_kernel(consumer):
        if isinstance(consumer, SlidingWindowHeavyHitters):
            return consumer.window_kernel()
        return consumer.kernel

    table = ResultTable(
        f"Engine consumers: scalar vs kernel-batched updates/sec "
        f"(Zipf 1.05, k={k})",
        [
            "consumer", "backend", "k", "scalar_sec", "batch_sec",
            "scalar_per_sec", "batch_per_sec", "batch_speedup",
        ],
    )
    for name, make_pair in (("windowed", windowed_pair), ("decayed", decayed_pair)):
        for backend in ("dict", "columnar"):
            scalar, batched = make_pair(backend)
            start = time.perf_counter()
            for slice_updates in scalar_slices:
                update = scalar.update
                for item, weight in slice_updates:
                    update(item, weight)
                boundary(scalar)
            scalar_seconds = time.perf_counter() - start
            start = time.perf_counter()
            for items, weights in batches:
                batched.update_batch(items, weights)
                boundary(batched)
            batch_seconds = time.perf_counter() - start
            kernel_a = final_kernel(scalar)
            kernel_b = final_kernel(batched)
            same = (
                kernel_a.offset == kernel_b.offset
                and kernel_a.stream_weight == kernel_b.stream_weight
                and list(kernel_a.store.items()) == list(kernel_b.store.items())
            )
            if not same:  # pragma: no cover
                raise AssertionError(
                    f"scalar/batch divergence: {name} on backend {backend!r}"
                )
            table.add_row(
                consumer=name,
                backend=backend,
                k=k,
                scalar_sec=scalar_seconds,
                batch_sec=batch_seconds,
                scalar_per_sec=n / scalar_seconds,
                batch_per_sec=n / batch_seconds,
                batch_speedup=scalar_seconds / batch_seconds,
            )
    return table


def ablation_merge_order(config: BenchConfig) -> ResultTable:
    """The Section 3.2 note: random-order vs in-order merge iteration.

    Two probing-backend sketches *sharing a hash seed* are merged with
    the counters fed in table order vs shuffled; the table reports probe
    counts and the destination table's maximum probe distance.
    """
    k = config.k_values[-1]
    updates = config.merge_updates_per_sketch_factor * k
    table = ResultTable(
        f"Ablation: merge iteration order, shared hash seed, k={k}",
        ["order", "probes", "max_probe_state", "seconds"],
    )
    for order in ("in-order", "random"):
        left = make_smed(k, seed=config.seed, backend="probing")
        right = make_smed(k, seed=config.seed, backend="probing")
        feed_stream(
            left,
            zipf_weighted_stream(updates, universe=50 * k, alpha=1.05, seed=config.seed + 1),
        )
        feed_stream(
            right,
            zipf_weighted_stream(updates, universe=50 * k, alpha=1.05, seed=config.seed + 2),
        )
        left._store.probe_count = 0
        start = time.perf_counter()
        if order == "random":
            left.merge(right)
        else:
            for item, count in list(right._store.items()):
                left._ingest(item, count)
            left._offset += right.maximum_error
            left._stream_weight += right.stream_weight
        seconds = time.perf_counter() - start
        table.add_row(
            order=order,
            probes=left._store.probe_count,
            max_probe_state=left._store.max_state(),
            seconds=seconds,
        )
    return table


def adversarial_table(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """The Section 1.3.4 separation: RBMC's worst case vs SMED.

    On the constructed stream (k huge items, then a long run of fresh
    unit items) RBMC executes a Θ(k) decrement pass on *every* unit
    update, while SMED's sampled-median decrement keeps passes ≥ k/3
    updates apart (Theorem 3).  The table reports decrement passes,
    total counters scanned, and wall time for both, per k.
    """
    table = ResultTable(
        "Section 1.3.4 adversarial stream: RBMC pathology vs SMED",
        [
            "k",
            "algorithm",
            "seconds",
            "decrements",
            "decrements_per_update",
            "counters_scanned",
        ],
    )
    for k in config.k_values:
        tail = max(10 * k, 4_000)
        stream = list(rbmc_killer_stream(k, heavy_weight=1e6, num_unit_updates=tail))
        for name in ("RBMC", "SMED"):
            algorithm = make_algorithm(name, k, seed=config.seed, backend=backend)
            seconds = time_feed(algorithm, stream)
            table.add_row(
                k=k,
                algorithm=name,
                seconds=seconds,
                decrements=algorithm.stats.decrements,
                decrements_per_update=algorithm.stats.decrements_per_update(),
                counters_scanned=algorithm.stats.counters_scanned,
            )
    return table


def bounds_table(config: BenchConfig, backend: str = "dict") -> ResultTable:
    """Theorem 2/4 tail bounds measured across workload shapes."""
    k = config.k_values[len(config.k_values) // 2]
    workloads = [
        ("caida-like", packet_stream(config)),
        (
            "zipf1.05-weighted",
            zipf_weighted_stream(
                config.num_updates // 2, universe=20 * k, alpha=1.05, seed=config.seed
            ),
        ),
        (
            "uniform-weighted",
            uniform_weighted_stream(
                config.num_updates // 2, universe=20 * k, seed=config.seed
            ),
        ),
        (
            "rbmc-killer",
            list(rbmc_killer_stream(k, 10_000.0, config.num_updates // 2)),
        ),
    ]
    table = ResultTable(
        f"Theorem 4 check at k={k}: observed max underestimate vs N^res(j)/(k/3 - j)",
        ["workload", "observed", "bound_j0", "bound_j_k8", "holds"],
    )
    for name, stream in workloads:
        sketch = make_smed(k, seed=config.seed, backend=backend)
        exact = ExactCounter()
        for item, weight in stream:
            sketch.update(item, weight)
            exact.update(item, weight)
        observed = max_underestimate(sketch, exact)
        k_star = k / 3.0
        j = k // 8
        bound0 = exact.residual_weight(0) / k_star
        bound_j = exact.residual_weight(j) / (k_star - j)
        table.add_row(
            workload=name,
            observed=observed,
            bound_j0=bound0,
            bound_j_k8=bound_j,
            holds=observed <= min(bound0, bound_j) + 1e-9,
        )
    return table


def sharded_throughput_table(config: BenchConfig) -> ResultTable:
    """Sharded parallel ingest vs the flat columnar backend.

    The Section 4.5 Zipf workload is fed once through the flat columnar
    ``update_batch`` path and once per shard count through
    :class:`~repro.sharded.sketch.ShardedFrequentItemsSketch`.  The
    sketch is sized like a deployment — ``k`` within a small factor of
    the distinct-key count — the regime where a single table overflows
    (decrement passes chop every batch into segments) while each shard's
    key subset fits its own ``k`` counters, so sharding removes the
    passes *and* spreads the remaining vector work across the pool.
    Each configuration is timed as the best of three feeds (fresh sketch
    per feed) to damp scheduler noise; ``decrements`` carries the
    hardware-independent explanation for the speedup.
    """
    from repro.sharded.sketch import ShardedFrequentItemsSketch

    batches = zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )
    n = num_batched_updates(batches)
    k = 4 * config.k_values[-1]
    # Warm-up pulls NumPy's lazily imported submodules and the thread
    # pool machinery out of the timed regions.
    warm_items, warm_weights = batches[0]
    with ShardedFrequentItemsSketch(max(2, k // 8), num_shards=2, seed=0) as warm:
        warm.update_batch(warm_items[:256], warm_weights[:256])

    def best_of(feed: Callable[[], object], rounds: int = 3) -> tuple[float, object]:
        best_seconds, best_result = float("inf"), None
        for _round in range(rounds):
            start = time.perf_counter()
            result = feed()
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_seconds, best_result, result = seconds, result, best_result
            # Shut the discarded round's thread pool down promptly
            # instead of leaving it to garbage collection.
            close = getattr(result, "close", None)
            if close is not None:
                close()
        return best_seconds, best_result

    def feed_flat() -> FrequentItemsSketch:
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        for items, weights in batches:
            sketch.update_batch(items, weights)
        return sketch

    table = ResultTable(
        f"Sharded parallel ingest vs flat columnar (Zipf 1.05, k={k})",
        [
            "mode", "shards", "k", "sec", "per_sec",
            "speedup_vs_flat", "decrements", "max_error",
        ],
    )
    flat_seconds, flat = best_of(feed_flat)
    table.add_row(
        mode="flat",
        shards=1,
        k=k,
        sec=flat_seconds,
        per_sec=n / flat_seconds,
        speedup_vs_flat=1.0,
        decrements=flat.stats.decrements,
        max_error=flat.maximum_error,
    )
    for num_shards in (1, 2, 4, 8):
        def feed_sharded(num_shards: int = num_shards) -> "ShardedFrequentItemsSketch":
            sketch = ShardedFrequentItemsSketch(
                k, num_shards=num_shards, seed=config.seed
            )
            for items, weights in batches:
                sketch.update_batch(items, weights)
            return sketch
        seconds, sketch = best_of(feed_sharded)
        table.add_row(
            mode="sharded",
            shards=num_shards,
            k=k,
            sec=seconds,
            per_sec=n / seconds,
            speedup_vs_flat=flat_seconds / seconds,
            decrements=sketch.stats.decrements,
            max_error=sketch.maximum_error,
        )
        sketch.close()
    return table


_PROFILE_ARRAY_CACHE: dict[tuple, tuple] = {}


def profile_arrays(config: BenchConfig, alpha: float):
    """The Section 4.5 Zipf workload as flat ``(items, weights)`` arrays.

    One materialization per ``(scale, alpha)`` — shared by the ingest
    profile below and the experiment-matrix runner
    (:mod:`repro.bench.matrix`), so every consumer times the identical
    update sequence instead of regenerating its own copy.
    """
    import numpy as np

    key = (config.num_updates, config.unique_sources, alpha, config.seed)
    if key not in _PROFILE_ARRAY_CACHE:
        stream = zipf_weighted_stream(
            config.num_updates, config.unique_sources, alpha, config.seed
        )
        all_items = np.array([item for item, _w in stream], dtype=np.uint64)
        all_weights = np.array([w for _item, w in stream], dtype=np.float64)
        _PROFILE_ARRAY_CACHE[key] = (all_items, all_weights)
    return _PROFILE_ARRAY_CACHE[key]


def ingest_profile_rows(
    config: BenchConfig,
    batch_sizes: tuple[int, ...] = (1_024, 4_096, 16_384),
    alphas: tuple[float, ...] = (0.8, 1.05, 1.3),
) -> list[dict]:
    """Row producer for the ingest profile: backend × batch size × skew.

    Each row carries scalar/batch/adaptive throughput for one cell; the
    scalar and batch states are asserted identical so the numbers
    measure packaging, not semantics.  ``ingest_profile_table`` renders
    these rows and derives the gate figures; the experiment-matrix
    runner reuses the same workload arrays via :func:`profile_arrays`.
    """
    k = config.k_values[-1]
    rows: list[dict] = []
    for alpha in alphas:
        stream = zipf_weighted_stream(
            config.num_updates, config.unique_sources, alpha, config.seed
        )
        n = len(stream)
        all_items, all_weights = profile_arrays(config, alpha)
        for backend in ("dict", "probing", "robinhood", "columnar"):
            scalar = FrequentItemsSketch(k, backend=backend, seed=config.seed)
            scalar_seconds = time_feed(scalar, stream)
            scalar_blob = scalar.to_bytes()
            for batch in batch_sizes:
                batched = FrequentItemsSketch(k, backend=backend, seed=config.seed)
                start = time.perf_counter()
                for lo in range(0, n, batch):
                    batched.update_batch(
                        all_items[lo : lo + batch], all_weights[lo : lo + batch]
                    )
                batch_seconds = time.perf_counter() - start
                if batched.to_bytes() != scalar_blob:  # pragma: no cover
                    raise AssertionError(
                        f"scalar/batch divergence: backend={backend}, "
                        f"alpha={alpha}, batch={batch}"
                    )
                adaptive = FrequentItemsSketch(
                    k, backend=backend, seed=config.seed, growth="adaptive"
                )
                start = time.perf_counter()
                for lo in range(0, n, batch):
                    adaptive.update_batch(
                        all_items[lo : lo + batch], all_weights[lo : lo + batch]
                    )
                adaptive_seconds = time.perf_counter() - start
                rows.append(
                    {
                        "backend": backend,
                        "alpha": alpha,
                        "batch": batch,
                        "scalar_per_sec": n / scalar_seconds,
                        "batch_per_sec": n / batch_seconds,
                        "batch_speedup": scalar_seconds / batch_seconds,
                        "adaptive_per_sec": n / adaptive_seconds,
                    }
                )
    return rows


def ingest_profile_table(
    config: BenchConfig,
    json_path: str | None = None,
    batch_sizes: tuple[int, ...] = (1_024, 4_096, 16_384),
    alphas: tuple[float, ...] = (0.8, 1.05, 1.3),
) -> ResultTable:
    """Backend × batch-size × skew ingest profile (the perf trajectory).

    For every backend and Zipf skew the same update sequence is fed three
    ways — the scalar ``update`` loop, ``update_batch`` at each batch
    size, and ``update_batch`` on an adaptive-growth sketch — and the
    scalar/batch states are asserted identical so the numbers measure
    packaging, not semantics.  When ``json_path`` is given the full
    sweep (plus the gate figures the CI smoke job enforces: probing and
    robinhood batch >= 4x their scalar loops on the canonical α = 1.05
    workload, columnar batch throughput recorded for cross-PR
    comparison) is written as one JSON document.
    """
    k = config.k_values[-1]
    # Warm-up pulls NumPy's lazily imported submodules out of timed code.
    # (The generated batches are cached and reused by the alpha = 1.05
    # iteration of the sweep below, so nothing is generated twice.)
    warmup = FrequentItemsSketch(max(2, k // 8), backend="columnar", seed=0)
    warmup.update_batch(*zipf_weighted_batches(
        config.num_updates, config.unique_sources, 1.05, config.seed
    )[0])
    table = ResultTable(
        f"Ingest profile: backend x batch size x skew (k={k})",
        [
            "backend", "alpha", "batch", "scalar_per_sec", "batch_per_sec",
            "batch_speedup", "adaptive_per_sec",
        ],
    )
    rows = ingest_profile_rows(config, batch_sizes, alphas)
    for record in rows:
        table.add_row(**record)
    if json_path is not None:
        def best_speedup(backend: str) -> float:
            return max(
                row["batch_speedup"]
                for row in rows
                if row["backend"] == backend and row["alpha"] == 1.05
            )
        from repro import native
        from repro.bench.io import atomic_write_json

        document = {
            "bench": "ingest-profile",
            "k": k,
            "num_updates": config.num_updates,
            "unique_sources": config.unique_sources,
            "seed": config.seed,
            # Which ingest path produced these rows (native C kernels vs
            # NumPy fallback) — absolute rows are not comparable across
            # paths, so the provenance must travel with the numbers.
            "metadata": native.runtime_metadata(),
            "rows": rows,
            "gates": {
                "probing_batch_speedup_alpha1.05": best_speedup("probing"),
                "robinhood_batch_speedup_alpha1.05": best_speedup("robinhood"),
                "columnar_batch_speedup_alpha1.05": best_speedup("columnar"),
                "dict_batch_speedup_alpha1.05": best_speedup("dict"),
                "columnar_batch_per_sec_alpha1.05": max(
                    row["batch_per_sec"]
                    for row in rows
                    if row["backend"] == "columnar" and row["alpha"] == 1.05
                ),
            },
        }
        atomic_write_json(json_path, document)
    return table


#: Producer-side submission size for the service benchmarks.  The gate
#: suite (benchmarks/bench_serve_throughput.py) and the figure below
#: must measure the same configuration, so both import these.
SERVE_SUBMIT_SIZE = 8_192


def serve_workload(config: BenchConfig):
    """``(producer_slices, per_producer)`` — one producer's submission
    stream for the service benchmarks (shared with the gate suite)."""
    import numpy as np

    per_producer = max(config.num_updates, 150_000)
    base = zipf_weighted_batches(
        per_producer, config.unique_sources, 1.05, config.seed
    )
    items = np.concatenate([b[0] for b in base])[:per_producer]
    weights = np.concatenate([b[1] for b in base])[:per_producer]
    slices = [
        (items[lo : lo + SERVE_SUBMIT_SIZE], weights[lo : lo + SERVE_SUBMIT_SIZE])
        for lo in range(0, per_producer, SERVE_SUBMIT_SIZE)
    ]
    return slices, per_producer


def serve_pipeline_config():
    """The pipeline tuning the service benchmarks run (shared with the
    gate suite)."""
    from repro.service.pipeline import PipelineConfig

    return PipelineConfig(
        max_batch_items=16_384, flush_interval=0.005, max_pending_items=262_144
    )


#: Heartbeat miss window for the failover bench; the MTTR gate is
#: relative to it (recovery must land within five windows).  Shared
#: with benchmarks/bench_serve_throughput.py so the published figure
#: and the gate measure the same configuration.
FAILOVER_MISS_WINDOW = 0.5


def failover_mttr_metrics(seed: int = 2016) -> dict:
    """Kill-leader failover: detection latency and client-observed MTTR.

    A three-node replica set (leader + two followers, each with its own
    snapshot/WAL directory and a :class:`~repro.service.failover.
    FailoverCoordinator`) serves a :class:`~repro.service.client.
    ReconnectingServiceClient`.  Half the feed goes in, the leader is
    crash-killed, and the client keeps writing: the write-unavailability
    window (MTTR) is the gap between the kill and the first batch the
    *promoted* leader acknowledges, with detection latency read off the
    winner's coordinator instrumentation.

    The stream is an exact-count oracle (item universe far below the
    sketch's k, integer weights), so "no lost or duplicated updates
    across the failover" is asserted as estimate == exact count for
    every item — and the client's idempotent-resubmit count is asserted
    to be exactly one (the single in-flight frame the crash ate).
    """
    import asyncio
    import contextlib
    import shutil
    import tempfile

    import numpy as np

    from repro.service.client import ReconnectingServiceClient
    from repro.service.failover import (
        EpochStore,
        FailoverConfig,
        FailoverCoordinator,
    )
    from repro.service.pipeline import IngestPipeline, PipelineConfig
    from repro.service.replication import (
        ReplicationConfig,
        ReplicationManager,
    )
    from repro.service.server import StreamServer
    from repro.service.snapshot import SnapshotManager

    universe = 60
    k = 256  # > universe: the sketch never decrements, estimates are exact
    num_batches, batch_size = 12, 4_096
    rng = np.random.default_rng(seed)
    all_items = rng.integers(0, universe, num_batches * batch_size).astype(
        np.uint64
    )
    all_weights = rng.integers(1, 9, num_batches * batch_size).astype(
        np.float64
    )
    batches = [
        (all_items[lo : lo + batch_size], all_weights[lo : lo + batch_size])
        for lo in range(0, len(all_items), batch_size)
    ]
    exact: dict[int, float] = {}
    for item, weight in zip(all_items.tolist(), all_weights.tolist()):
        exact[item] = exact.get(item, 0.0) + weight

    pipe_config = PipelineConfig(max_batch_items=8_192, flush_interval=0.002)
    repl_config = ReplicationConfig(
        retry_initial=0.01, retry_max=0.1, max_retries=400,
        heartbeat_interval=0.1,
    )
    failover_config = FailoverConfig(
        heartbeat_miss_window=FAILOVER_MISS_WINDOW,
        check_interval=0.05,
        election_timeout=2.0,
        election_backoff=0.15,
        rpc_timeout=0.4,
        peer_poll_interval=0.2,
        jitter=0.5,
    )
    node_ids = ["n0", "n1", "n2"]
    root = tempfile.mkdtemp(prefix="repro-bench-failover-")

    async def scenario() -> dict:
        loop = asyncio.get_running_loop()
        pipelines: dict[str, IngestPipeline] = {}
        servers: dict[str, StreamServer] = {}
        coordinators: dict[str, FailoverCoordinator] = {}

        async def poll(predicate, timeout=30.0, message=""):
            deadline = loop.time() + timeout
            while not predicate():
                if loop.time() > deadline:
                    raise TimeoutError(message or "bench predicate timeout")
                await asyncio.sleep(0.01)

        for node_id in node_ids:
            pipelines[node_id] = IngestPipeline(
                FrequentItemsSketch(k, backend="columnar", seed=seed),
                config=pipe_config,
                snapshots=SnapshotManager(f"{root}/{node_id}"),
                replication=ReplicationManager(repl_config),
                replica=(node_id != "n0"),
            )
            await pipelines[node_id].start()
            servers[node_id] = StreamServer(pipelines[node_id])
            await servers[node_id].start()
        addrs = {
            node_id: f"127.0.0.1:{servers[node_id].port}"
            for node_id in node_ids
        }
        for node_id in node_ids:
            coordinator = FailoverCoordinator(
                node_id,
                pipelines[node_id],
                self_addr=addrs[node_id],
                peers={p: a for p, a in addrs.items() if p != node_id},
                leader_id=None if node_id == "n0" else "n0",
                leader_addr=None if node_id == "n0" else addrs["n0"],
                epoch_store=EpochStore(f"{root}/{node_id}"),
                repl_config=repl_config,
                config=failover_config,
            )
            servers[node_id].coordinator = coordinator
            coordinators[node_id] = await coordinator.start()

        client = ReconnectingServiceClient(
            "127.0.0.1", servers["n0"].port,
            peers=[addrs["n1"], addrs["n2"]],
            max_retries=400, backoff_initial=0.01, backoff_max=0.05,
        )
        try:
            half = num_batches // 2
            for items, weights in batches[:half]:
                await client.send_batch(items, weights)
            await poll(
                lambda: pipelines["n0"].pending_items == 0,
                message="pre-kill backlog never drained",
            )
            pre_kill_seq = pipelines["n0"].applied_seq
            await poll(
                lambda: all(
                    pipelines[n].applied_seq >= pre_kill_seq
                    for n in ("n1", "n2")
                ),
                message="followers never caught up before the kill",
            )

            killed_at = loop.time()
            await coordinators["n0"].stop()
            await servers["n0"].stop()
            with contextlib.suppress(Exception):
                await pipelines["n0"].stop(final_snapshot=False)

            # The client keeps writing; the first post-kill ack marks the
            # end of the write-unavailability window.
            items, weights = batches[half]
            await client.send_batch(items, weights)
            first_ack_at = loop.time()
            for items, weights in batches[half + 1 :]:
                await client.send_batch(items, weights)

            (winner_id,) = [
                n for n in ("n1", "n2") if not pipelines[n].is_replica
            ]
            survivor_id = "n1" if winner_id == "n2" else "n2"
            winner = coordinators[winner_id]
            leader_pipe = pipelines[winner_id]
            await poll(
                lambda: leader_pipe.pending_items == 0,
                message="post-failover backlog never drained",
            )
            await poll(
                lambda: (
                    pipelines[survivor_id].applied_seq
                    == leader_pipe.applied_seq
                ),
                message="survivor never caught up to the new leader",
            )

            # Exactly-once across the failover: the oracle is exact.
            lost = sum(
                1 for item, count in exact.items()
                if leader_pipe.estimate(item) != count
            )
            exactly_once = lost == 0 and (
                leader_pipe.sketch.stream_weight == float(all_weights.sum())
            )
            byte_identical = (
                pipelines[survivor_id].sketch.to_bytes()
                == leader_pipe.sketch.to_bytes()
            )
            return {
                "nodes": len(node_ids),
                "heartbeat_interval": repl_config.heartbeat_interval,
                "heartbeat_miss_window": failover_config.heartbeat_miss_window,
                "updates": int(all_items.size),
                "new_leader": winner_id,
                "epoch": leader_pipe.epoch,
                "elections_won": winner.elections_won,
                "detection_seconds": (
                    (winner.last_detection_at or killed_at) - killed_at
                ),
                "election_seconds": (
                    (winner.promoted_at or killed_at) - killed_at
                ),
                "mttr_seconds": first_ack_at - killed_at,
                "client_reconnects": client.reconnects,
                "client_redirects": client.redirects,
                "client_resubmits": client.resubmits,
                "exactly_once": exactly_once,
                "survivor_byte_identical": byte_identical,
                "gate_mttr_max_seconds": (
                    5.0 * failover_config.heartbeat_miss_window
                ),
            }
        finally:
            await client.close()
            for node_id in node_ids:
                if coordinators.get(node_id) is not None:
                    with contextlib.suppress(Exception):
                        await coordinators[node_id].stop()
                with contextlib.suppress(Exception):
                    await servers[node_id].stop()
                with contextlib.suppress(Exception):
                    await pipelines[node_id].stop(final_snapshot=False)

    try:
        return asyncio.run(scenario())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def serve_throughput_table(
    config: BenchConfig, json_path: str | None = None
) -> ResultTable:
    """Sustained ingest-service throughput under concurrent producers.

    The Section 4.5 Zipf workload is pushed through the asyncio
    :class:`~repro.service.pipeline.IngestPipeline` by concurrent
    producer coroutines submitting array batches; the timed region spans
    first submit to full drain, so the figure is *applied* updates/sec,
    queue overhead included.  The configurations:

    * ``pipeline-1p`` / ``pipeline-4p`` — flat columnar sketch, 1 vs 4
      producers (the 4-producer row is the CI gate: >= 1M updates/sec).
    * ``pipeline-4p-sharded`` — the 4-shard sketch behind the pipeline.
    * ``pipeline-4p-wal`` — durability on: every micro-batch WAL-logged
      and periodic snapshots, measuring the write-ahead overhead.
    * ``pipeline-4p-repl`` — a live follower subscribed over TCP: the
      timed region ends when the *replica* has applied the leader's last
      micro-batch, so the figure is replicated (not just local)
      throughput; the follower's blob is asserted byte-identical.
    * ``pipeline-4p-repl2`` — the same with a leader + **2** followers:
      the fan-out cost of each additional subscriber.
    * ``tcp-bin`` — end to end over a loopback socket with the binary
      frame protocol (one client, request/response per 8k-update frame).
    * ``cluster-1w`` / ``cluster-4w`` — the multi-process tenant cluster
      (:mod:`repro.service.cluster`): 4 tenants fed round-robin through
      a :class:`~repro.service.cluster.WorkerPool` of 1 vs 4 worker
      processes over zero-copy shared-memory frames.  Their ratio is the
      scale-out figure, recorded in the JSON ``cluster`` block and gated
      (>= 2.5x) on runners with at least 4 cores.

    The single-producer run is asserted bit-identical to a direct
    ``update_batch`` feed — the service may only repackage, not change,
    the stream.

    When ``json_path`` is given the document also carries a ``failover``
    block from :func:`failover_mttr_metrics` — detection latency and
    client-observed MTTR for a kill-leader failover, gated (<= 5x the
    heartbeat miss window) in ``benchmarks/bench_serve_throughput.py``.
    """
    import asyncio
    import shutil
    import tempfile

    import numpy as np

    from repro.service.client import ServiceClient
    from repro.service.pipeline import IngestPipeline
    from repro.service.server import StreamServer
    from repro.service.snapshot import SnapshotManager
    from repro.sharded.sketch import ShardedFrequentItemsSketch

    k = config.k_values[-1]
    # The service amortizes per-batch overhead; give each producer enough
    # stream to measure steady state even at the quick scale.
    producer_slices, per_producer = serve_workload(config)
    pipe_config = serve_pipeline_config()

    async def run_pipeline(sketch, num_producers, snapshots=None):
        pipeline = IngestPipeline(
            sketch, config=pipe_config, snapshots=snapshots
        )
        async with pipeline:
            async def producer():
                for part_items, part_weights in producer_slices:
                    await pipeline.submit(part_items, part_weights)

            start = time.perf_counter()
            await asyncio.gather(*(producer() for _ in range(num_producers)))
            await pipeline.drain()
            seconds = time.perf_counter() - start
        return seconds, num_producers * per_producer, pipeline

    async def run_replicated(num_producers, num_followers=1):
        from contextlib import AsyncExitStack

        from repro.service.replication import FollowerService, ReplicationManager

        leader = IngestPipeline(
            FrequentItemsSketch(k, backend="columnar", seed=config.seed),
            config=pipe_config,
            replication=ReplicationManager(),
        )
        async with AsyncExitStack() as stack:
            await stack.enter_async_context(leader)
            server = await stack.enter_async_context(StreamServer(leader))
            followers = []
            for _ in range(num_followers):
                follower_pipe = IngestPipeline(
                    FrequentItemsSketch(
                        k, backend="columnar", seed=config.seed
                    ),
                    config=pipe_config,
                    replica=True,
                )
                await stack.enter_async_context(follower_pipe)
                follower = FollowerService(
                    follower_pipe, "127.0.0.1", server.port
                )
                await follower.start()
                followers.append((follower_pipe, follower))

            async def producer():
                for part_items, part_weights in producer_slices:
                    await leader.submit(part_items, part_weights)

            start = time.perf_counter()
            await asyncio.gather(
                *(producer() for _ in range(num_producers))
            )
            await leader.drain()
            # The clock stops when the *slowest replica* is caught up:
            # the figure is fully-fanned-out (not just local) throughput.
            for _pipe, follower in followers:
                await follower.wait_for_seq(leader.applied_seq, timeout=120.0)
            seconds = time.perf_counter() - start
            leader_blob = leader.sketch.to_bytes()
            for follower_pipe, _follower in followers:
                if follower_pipe.sketch.to_bytes() != leader_blob:
                    raise AssertionError(  # pragma: no cover
                        "replica diverged from the leader mid-benchmark"
                    )
            detail = {
                "followers": num_followers,
                "frames_applied": followers[0][1].frames_applied,
                "snapshots_installed": followers[0][1].snapshots_installed,
                "reconnects": sum(f.reconnects for _p, f in followers),
                "follower_seq": followers[0][0].applied_seq,
                "byte_identical": True,
            }
            for _pipe, follower in followers:
                await follower.stop()
        return seconds, num_producers * per_producer, leader, detail

    async def run_tcp(sketch):
        pipeline = IngestPipeline(sketch, config=pipe_config)
        async with pipeline:
            server = StreamServer(pipeline)
            async with server:
                client = await ServiceClient.connect("127.0.0.1", server.port)
                start = time.perf_counter()
                for part_items, part_weights in producer_slices:
                    await client.send_batch(part_items, part_weights)
                await pipeline.drain()
                seconds = time.perf_counter() - start
                await client.close()
        return seconds, per_producer, pipeline

    async def run_cluster(num_workers, num_tenants=4):
        """Multi-process cluster: round-robin tenants, applied upd/s."""
        from repro.service.cluster import ClusterConfig, WorkerPool

        cluster_config = ClusterConfig(
            num_workers=num_workers,
            default_k=k,
            default_seed=config.seed,
        )
        async with WorkerPool(cluster_config) as pool:
            tenants = [f"bench-t{i}" for i in range(num_tenants)]
            for name in tenants:
                await pool.create_tenant(name)

            async def producer(name):
                for part_items, part_weights in producer_slices:
                    await pool.submit(name, part_items, part_weights)

            start = time.perf_counter()
            await asyncio.gather(*(producer(name) for name in tenants))
            await pool.drain()
            seconds = time.perf_counter() - start
            stats = pool.stats()
        return seconds, num_tenants * per_producer, stats

    # Warm-up (numpy lazy imports + asyncio machinery out of timed code).
    async def warm_up():
        warm = FrequentItemsSketch(max(2, k // 8), backend="columnar", seed=0)
        pipeline = IngestPipeline(warm, config=pipe_config)
        warm_items, warm_weights = producer_slices[0]
        async with pipeline:
            await pipeline.submit(warm_items[:256], warm_weights[:256])
            await pipeline.drain()

    asyncio.run(warm_up())

    table = ResultTable(
        f"Streaming service: sustained applied updates/sec (Zipf 1.05, k={k})",
        [
            "mode", "producers", "updates", "seconds", "updates_per_sec",
            "micro_batches", "wal_bytes",
        ],
    )
    rows: list[dict] = []

    def record(mode, producers, seconds, total, pipeline):
        stats = pipeline.stats
        row = {
            "mode": mode,
            "producers": producers,
            "updates": total,
            "seconds": seconds,
            "updates_per_sec": total / seconds,
            "micro_batches": stats.applied_batches,
            "wal_bytes": stats.wal_bytes,
        }
        rows.append(row)
        table.add_row(**row)

    # pipeline-1p, asserted bit-identical to the direct feed.
    sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    seconds, total, pipeline = asyncio.run(run_pipeline(sketch, 1))
    reference = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    for part_items, part_weights in producer_slices:
        reference.update_batch(part_items, part_weights)
    if sketch.to_bytes() != reference.to_bytes():  # pragma: no cover
        raise AssertionError("service feed diverged from direct update_batch")
    record("pipeline-1p", 1, seconds, total, pipeline)

    sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    seconds, total, pipeline = asyncio.run(run_pipeline(sketch, 4))
    record("pipeline-4p", 4, seconds, total, pipeline)

    sharded = ShardedFrequentItemsSketch(
        k, num_shards=4, seed=config.seed, backend="columnar"
    )
    seconds, total, pipeline = asyncio.run(run_pipeline(sharded, 4))
    sharded.close()
    record("pipeline-4p-sharded", 4, seconds, total, pipeline)

    wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
        seconds, total, pipeline = asyncio.run(
            run_pipeline(sketch, 4, snapshots=SnapshotManager(wal_dir))
        )
        record("pipeline-4p-wal", 4, seconds, total, pipeline)
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)

    seconds, total, pipeline, replication_detail = asyncio.run(
        run_replicated(4)
    )
    record("pipeline-4p-repl", 4, seconds, total, pipeline)

    # Leader + 2 followers: the fan-out cost of a second subscriber.
    seconds, total, pipeline, fanout_detail = asyncio.run(
        run_replicated(4, num_followers=2)
    )
    record("pipeline-4p-repl2", 4, seconds, total, pipeline)

    sketch = FrequentItemsSketch(k, backend="columnar", seed=config.seed)
    seconds, total, pipeline = asyncio.run(run_tcp(sketch))
    record("tcp-bin", 1, seconds, total, pipeline)

    # Multi-process cluster: same workload fanned over 4 tenants, 1 vs 4
    # worker processes (the scale-out figure; gated on >= 4-core runners).
    cluster_rows: dict[int, dict] = {}
    cluster_stats: dict[int, dict] = {}
    for num_workers in (1, 4):
        seconds, total, stats = asyncio.run(run_cluster(num_workers))
        row = {
            "mode": f"cluster-{num_workers}w",
            "producers": 4,
            "updates": total,
            "seconds": seconds,
            "updates_per_sec": total / seconds,
            "micro_batches": sum(
                worker["applied_seq"] for worker in stats["workers"]
            ),
            "wal_bytes": 0,
        }
        rows.append(row)
        table.add_row(**row)
        cluster_rows[num_workers] = row
        cluster_stats[num_workers] = stats

    if json_path is not None:
        import os

        from repro import native
        from repro.bench.io import atomic_write_json

        def rate_of(mode: str) -> float:
            return next(
                row["updates_per_sec"] for row in rows if row["mode"] == mode
            )

        scaling = (
            cluster_rows[4]["updates_per_sec"]
            / cluster_rows[1]["updates_per_sec"]
        )
        failover_detail = failover_mttr_metrics(config.seed)
        document = {
            "bench": "serve",
            "k": k,
            "per_producer_updates": per_producer,
            "unique_sources": config.unique_sources,
            "seed": config.seed,
            "metadata": native.runtime_metadata(),
            "rows": rows,
            "replication": {
                **replication_detail,
                "replicated_fraction_of_4p": (
                    rate_of("pipeline-4p-repl") / rate_of("pipeline-4p")
                ),
            },
            "replication_fanout": {
                **fanout_detail,
                "fanout2_fraction_of_repl1": (
                    rate_of("pipeline-4p-repl2") / rate_of("pipeline-4p-repl")
                ),
            },
            "cluster": {
                "routing": "ketama",
                "vnodes": cluster_stats[4]["vnodes"],
                "frame_transport": cluster_stats[4]["frame_transport"],
                "slot_capacity": cluster_stats[4]["slot_capacity"],
                "tenants": len(cluster_stats[4]["tenants"]),
                "cpu_count": os.cpu_count(),
                "workers_1_updates_per_sec": cluster_rows[1]["updates_per_sec"],
                "workers_4_updates_per_sec": cluster_rows[4]["updates_per_sec"],
                "per_worker_updates_per_sec": (
                    cluster_rows[4]["updates_per_sec"] / 4
                ),
                "scaling_vs_1w": scaling,
                # The >= 2.5x gate only binds where 4 workers can actually
                # run in parallel; below 4 cores the figure is recorded,
                # not enforced (see benchmarks/bench_serve_throughput.py).
                "gate_enforced": (os.cpu_count() or 1) >= 4,
            },
            "failover": failover_detail,
            "gates": {
                "failover_mttr_seconds": failover_detail["mttr_seconds"],
                "pipeline_4p_updates_per_sec": rate_of("pipeline-4p"),
                "pipeline_4p_repl_updates_per_sec": rate_of("pipeline-4p-repl"),
                "pipeline_4p_repl2_updates_per_sec": rate_of(
                    "pipeline-4p-repl2"
                ),
                "cluster_scaling_vs_1w": scaling,
            },
        }
        atomic_write_json(json_path, document)
    return table
