"""Durable bench-document I/O: atomic JSON writes.

Every JSON document the bench plane persists — the seed
``BENCH_ingest.json``/``BENCH_serve.json`` trajectories the gate suites
parse and the per-run matrix documents under ``bench_runs/`` — goes
through :func:`atomic_write_json`.  The write lands in a sibling
temporary file first and is moved over the target with ``os.replace``
(the same tmp + rename pattern the tenant registry uses for
``tenants.json``), so a crash mid-serialization can truncate only the
temporary file: the previous document stays byte-identical and the
parsers never see a torn write.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Any


def atomic_write_json(path: str | os.PathLike, document: Any, *, indent: int = 2) -> None:
    """Serialize ``document`` to ``path`` atomically.

    The JSON is streamed into ``<path>.tmp`` in the same directory (so
    the final ``os.replace`` is a same-filesystem rename, which POSIX
    makes atomic) and moved into place only after a successful dump +
    flush + fsync.  If serialization raises partway — e.g. an
    unserializable value deep in the document — the temporary file is
    removed and the previous contents of ``path`` are untouched.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=indent)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)


def load_json(path: str | os.PathLike) -> Any:
    """Read one JSON document (the counterpart of :func:`atomic_write_json`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _git(args: list[str], cwd: str | None = None) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_revision(cwd: str | None = None) -> dict[str, Any]:
    """``{"git_hash": ..., "git_dirty": ...}`` for ``cwd`` (or the CWD).

    Outside a git checkout — or with no ``git`` on PATH — the hash is
    ``"unknown"`` and dirty is ``None``: run documents must still stamp
    *something* so their provenance fields are always present.
    """
    head = _git(["rev-parse", "HEAD"], cwd)
    if head is None:
        return {"git_hash": "unknown", "git_dirty": None}
    status = _git(["status", "--porcelain"], cwd)
    return {
        "git_hash": head,
        "git_dirty": None if status is None else bool(status),
    }


def utc_timestamp() -> str:
    """The current time as an ISO-8601 UTC string (run-document stamps)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
