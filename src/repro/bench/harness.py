"""Shared benchmark plumbing: configurations, stream caching, timed feeds.

All experiments consume materialized update lists (generation cost never
pollutes timings) and run at a named scale.  ``quick`` finishes a full
``python -m repro.bench all`` in minutes on a laptop; ``paper``
approaches the paper's workload shape (more updates, more uniques,
larger k) for overnight runs.  Absolute wall-clock numbers are not
comparable to the paper's Java on 126M CAIDA updates — the *orderings
and ratios* are what the harness is after, plus the hardware-independent
operation counts every table carries.

Streams are cached in both representations: per-item update lists for
the scalar ``update`` loop and materialized ``(items, weights)`` array
batches for ``update_batch``.  Both carry the identical update sequence
(the batch form is the source of truth; the scalar list is its
flattening), so scalar-vs-batch timings measure the ingestion path and
nothing else.
"""

from __future__ import annotations

import contextlib
import gc
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.streams.caida import SyntheticPacketTrace
from repro.streams.exact import ExactCounter
from repro.streams.transforms import flatten_batches
from repro.streams.zipf import ZipfianStream
from repro.types import StreamUpdate

#: One ``(items, weights)`` array pair.
Batch = tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True)
class BenchConfig:
    """Workload knobs for one experiment scale."""

    num_updates: int
    unique_sources: int
    k_values: tuple[int, ...]
    merge_pairs: int
    merge_updates_per_sketch_factor: int  # updates per sketch = factor * k
    quantiles: tuple[int, ...]  # percent values for the Figure-3 sweep
    seed: int = 2016


SCALES: dict[str, BenchConfig] = {
    "quick": BenchConfig(
        num_updates=30_000,
        unique_sources=6_000,
        k_values=(64, 128, 256, 512),
        merge_pairs=10,
        merge_updates_per_sketch_factor=6,
        quantiles=(0, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 98),
    ),
    "medium": BenchConfig(
        num_updates=150_000,
        unique_sources=25_000,
        k_values=(128, 256, 512, 1024),
        merge_pairs=25,
        merge_updates_per_sketch_factor=8,
        quantiles=(0, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 98),
    ),
    "paper": BenchConfig(
        num_updates=2_000_000,
        unique_sources=100_000,
        k_values=(1_024, 2_048, 4_096, 8_192, 16_384),
        merge_pairs=50,
        merge_updates_per_sketch_factor=10,
        quantiles=tuple(range(0, 100, 2)),
    ),
}

_STREAM_CACHE: dict[tuple, list[StreamUpdate]] = {}
_BATCH_CACHE: dict[tuple, list[Batch]] = {}
_EXACT_CACHE: dict[tuple, ExactCounter] = {}


def packet_batches(config: BenchConfig) -> list[Batch]:
    """The CAIDA-like trace as array batches (materialized once)."""
    key = ("caida", config.num_updates, config.unique_sources, config.seed)
    if key not in _BATCH_CACHE:
        trace = SyntheticPacketTrace(
            config.num_updates,
            unique_sources=config.unique_sources,
            seed=config.seed,
        )
        _BATCH_CACHE[key] = list(trace.batches())
    return _BATCH_CACHE[key]


def packet_stream(config: BenchConfig) -> list[StreamUpdate]:
    """The CAIDA-like trace for this scale (materialized once)."""
    key = ("caida", config.num_updates, config.unique_sources, config.seed)
    if key not in _STREAM_CACHE:
        _STREAM_CACHE[key] = list(flatten_batches(packet_batches(config)))
    return _STREAM_CACHE[key]


def zipf_weighted_batches(
    num_updates: int, universe: int, alpha: float, seed: int
) -> list[Batch]:
    """The Section 4.5 synthetic stream as array batches."""
    key = ("zipf", num_updates, universe, alpha, seed)
    if key not in _BATCH_CACHE:
        _BATCH_CACHE[key] = list(
            ZipfianStream(
                num_updates,
                universe=universe,
                alpha=alpha,
                seed=seed,
                weight_low=1,
                weight_high=10_000,
            ).batches()
        )
    return _BATCH_CACHE[key]


def zipf_weighted_stream(
    num_updates: int, universe: int, alpha: float, seed: int
) -> list[StreamUpdate]:
    """The Section 4.5 synthetic stream: Zipf items, U[1, 10000] weights."""
    key = ("zipf", num_updates, universe, alpha, seed)
    if key not in _STREAM_CACHE:
        _STREAM_CACHE[key] = list(
            flatten_batches(zipf_weighted_batches(num_updates, universe, alpha, seed))
        )
    return _STREAM_CACHE[key]


def packet_exact(config: BenchConfig) -> ExactCounter:
    """Ground truth for :func:`packet_stream` (computed once)."""
    key = ("caida", config.num_updates, config.unique_sources, config.seed)
    if key not in _EXACT_CACHE:
        exact = ExactCounter()
        exact.update_all(packet_stream(config))
        _EXACT_CACHE[key] = exact
    return _EXACT_CACHE[key]


def zipf_exact(
    num_updates: int, universe: int, alpha: float, seed: int
) -> ExactCounter:
    """Ground truth for :func:`zipf_weighted_stream` (computed once)."""
    key = ("zipf", num_updates, universe, alpha, seed)
    if key not in _EXACT_CACHE:
        exact = ExactCounter()
        exact.update_all(zipf_weighted_stream(num_updates, universe, alpha, seed))
        _EXACT_CACHE[key] = exact
    return _EXACT_CACHE[key]


@contextlib.contextmanager
def gc_isolated() -> Iterator[None]:
    """Disable the cyclic garbage collector around a timed region.

    A GC pass landing inside a timed feed can flake a throughput gate by
    tens of percent at the quick scale, so every timing helper runs its
    measured region with collection off.  The collector's prior state is
    restored on exit (nested isolation, or callers that already disabled
    it, keep their setting), so the isolation never leaks into the rest
    of the process.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def feed_stream(algorithm, updates: Sequence[StreamUpdate]) -> None:
    """Feed every update to ``algorithm`` (bound-method hoisted)."""
    update = algorithm.update
    for item, weight in updates:
        update(item, weight)


def time_feed(algorithm, updates: Sequence[StreamUpdate]) -> float:
    """Wall-clock seconds to feed ``updates`` into ``algorithm``."""
    update = algorithm.update
    with gc_isolated():
        start = time.perf_counter()
        for item, weight in updates:
            update(item, weight)
        return time.perf_counter() - start


def feed_batches(algorithm, batches: Iterable[Batch]) -> None:
    """Feed every array batch to ``algorithm.update_batch``."""
    update_batch = algorithm.update_batch
    for items, weights in batches:
        update_batch(items, weights)


def time_feed_batches(algorithm, batches: Sequence[Batch]) -> float:
    """Wall-clock seconds to feed ``batches`` into ``algorithm``."""
    update_batch = algorithm.update_batch
    with gc_isolated():
        start = time.perf_counter()
        for items, weights in batches:
            update_batch(items, weights)
        return time.perf_counter() - start


def num_batched_updates(batches: Sequence[Batch]) -> int:
    """Total updates carried by a batch list."""
    return sum(len(items) for items, _weights in batches)


def time_call(function: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock seconds and result of one call."""
    with gc_isolated():
        start = time.perf_counter()
        result = function()
        return time.perf_counter() - start, result


def repeat_median(
    timed_run: Callable[[], float], repeats: int = 3
) -> tuple[float, list[float]]:
    """Median-of-``repeats`` sampling for a timed run.

    ``timed_run`` must perform one complete, independent measurement
    (fresh sketch, same workload) and return its seconds.  Gates built
    on the median of three runs compare typical throughput instead of
    whichever single shot the scheduler happened to interrupt.  Returns
    ``(median_seconds, all_seconds)`` so run documents can persist the
    full sample alongside the statistic.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples = [timed_run() for _ in range(repeats)]
    return statistics.median(samples), samples
