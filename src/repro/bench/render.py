"""Render the experiment history into HTML + markdown reports.

The renderer consumes an :class:`~repro.bench.results.ExperimentResults`
context (fuzzbench-style: it touches only the properties it needs) and
writes two artifacts:

* ``report.html`` — fully self-contained: embedded CSS and hand-rolled
  inline SVG charts, so the file opens anywhere with zero dependencies
  (no matplotlib/plotly in this container, and none needed);
* ``report.md`` — the same tables in markdown for diff-friendly review
  and CI artifact skimming.

Charts: the accuracy-vs-space frontier (log-log, one polyline per
policy/backend/growth series — the FDCMSS-style comparison) and the
throughput trajectory across the run history, seeded with the
``BENCH_ingest.json`` / ``BENCH_serve.json`` points so the arc starts
at the first PRs' numbers.
"""

from __future__ import annotations

import html
import math
import os
from typing import Any, Sequence

from repro.bench.results import ExperimentResults, Frame

#: Qualitative palette (colorblind-safe Okabe-Ito order).
PALETTE = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00",
    "#56B4E9", "#F0E442", "#000000", "#999999", "#8C510A",
)

_CHART_W, _CHART_H = 720, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 170, 36, 56


def format_number(value: Any) -> str:
    """Compact human formatting for table cells and axis ticks."""
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


def _log10(value: float) -> float:
    return math.log10(value) if value > 0 else float("-inf")


def _axis_ticks(lo: float, hi: float, log: bool) -> list[float]:
    """5-ish tick positions spanning [lo, hi] (powers of ten when log)."""
    if log:
        lo_exp = math.floor(_log10(lo)) if lo > 0 else 0
        hi_exp = math.ceil(_log10(hi)) if hi > 0 else 1
        step = max(1, (hi_exp - lo_exp) // 6 or 1)
        return [10.0 ** e for e in range(lo_exp, hi_exp + 1, step)]
    if hi <= lo:
        return [lo]
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / 4)) if span > 0 else 1
    for multiple in (1, 2, 5, 10):
        if span / (step * multiple) <= 6:
            step *= multiple
            break
    first = math.ceil(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + 1e-12:
        ticks.append(tick)
        tick += step
    return ticks or [lo]


def svg_line_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str,
    x_label: str,
    y_label: str,
    log_x: bool = False,
    log_y: bool = False,
    x_categories: Sequence[str] | None = None,
    markers: bool = True,
) -> str:
    """One self-contained SVG: polyline + markers per named series.

    ``series`` maps a legend label to ``(x, y)`` points.  With
    ``x_categories`` the x values are category indices and the axis gets
    rotated text labels instead of numeric ticks (the trajectory chart).
    Non-finite and non-positive-on-log points are dropped per series.
    """
    def keep(x: float, y: float) -> bool:
        if not (math.isfinite(x) and math.isfinite(y)):
            return False
        if log_x and x <= 0:
            return False
        if log_y and y <= 0:
            return False
        return True

    cleaned = {
        label: [(x, y) for x, y in points if keep(x, y)]
        for label, points in series.items()
    }
    cleaned = {label: pts for label, pts in cleaned.items() if pts}
    width, height = _CHART_W, _CHART_H
    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">',
        f'<title>{html.escape(title)}</title>',
        f'<text x="{_MARGIN_L}" y="{_MARGIN_T - 14}" class="ctitle">'
        f"{html.escape(title)}</text>",
    ]
    if not cleaned:
        parts.append(
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
            f'class="cempty">no data</text></svg>'
        )
        return "\n".join(parts)

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_categories is not None:
        x_lo, x_hi = -0.5, len(x_categories) - 0.5
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo * 1.1 if y_lo else 1.0

    def sx(x: float) -> float:
        if log_x:
            frac = (_log10(x) - _log10(x_lo)) / (_log10(x_hi) - _log10(x_lo))
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return _MARGIN_L + frac * plot_w

    def sy(y: float) -> float:
        if log_y:
            frac = (_log10(y) - _log10(y_lo)) / (_log10(y_hi) - _log10(y_lo))
        else:
            frac = (y - y_lo) / (y_hi - y_lo)
        return _MARGIN_T + (1 - frac) * plot_h

    # Plot frame + gridlines + ticks.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" class="cframe"/>'
    )
    for tick in _axis_ticks(y_lo, y_hi, log_y):
        if not (y_lo <= tick <= y_hi):
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{y:.1f}" class="cgrid"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'class="ctick">{format_number(float(tick))}</text>'
        )
    if x_categories is not None:
        for index, label in enumerate(x_categories):
            x = sx(index)
            parts.append(
                f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 12}" '
                f'class="ctick" text-anchor="end" transform="rotate(-35 '
                f'{x:.1f} {_MARGIN_T + plot_h + 12})">'
                f"{html.escape(str(label))}</text>"
            )
    else:
        for tick in _axis_ticks(x_lo, x_hi, log_x):
            if not (x_lo <= tick <= x_hi):
                continue
            x = sx(tick)
            parts.append(
                f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
                f'y2="{_MARGIN_T + plot_h}" class="cgrid"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 16}" '
                f'text-anchor="middle" class="ctick">'
                f"{format_number(float(tick))}</text>"
            )
    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2}" y="{height - 8}" '
        f'text-anchor="middle" class="clabel">{html.escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{_MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'class="clabel" transform="rotate(-90 14 {_MARGIN_T + plot_h / 2})">'
        f"{html.escape(y_label)}</text>"
    )
    # Series.
    for index, (label, points) in enumerate(cleaned.items()):
        color = PALETTE[index % len(PALETTE)]
        points = sorted(points)
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
        if len(points) > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="1.8"/>'
            )
        if markers:
            for x, y in points:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3.2" '
                    f'fill="{color}"/>'
                )
        legend_y = _MARGIN_T + 14 + 16 * index
        legend_x = _MARGIN_L + plot_w + 12
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y + 1}" class="ctick">'
            f"{html.escape(label)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


# -- tables -----------------------------------------------------------------


def markdown_table(frame: Frame, columns: Sequence[str] | None = None) -> str:
    """A GitHub-flavored markdown table from a frame."""
    if frame.empty:
        return "_(no data)_"
    columns = list(columns or frame.columns)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in frame:
        lines.append(
            "| "
            + " | ".join(format_number(row.get(column)) for column in columns)
            + " |"
        )
    return "\n".join(lines)


def html_table(frame: Frame, columns: Sequence[str] | None = None) -> str:
    """An HTML table from a frame."""
    if frame.empty:
        return "<p><em>no data</em></p>"
    columns = list(columns or frame.columns)
    head = "".join(f"<th>{html.escape(column)}</th>" for column in columns)
    body = []
    for row in frame:
        cells = "".join(
            f"<td>{html.escape(format_number(row.get(column)))}</td>"
            for column in columns
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


# -- report assembly --------------------------------------------------------

_FRONTIER_COLUMNS = (
    "series", "k", "space_bytes", "max_error", "rel_error", "updates_per_sec",
)
_TRAJECTORY_COLUMNS = (
    "run_id", "source", "metric", "updates_per_sec", "ingest_path",
    "git_hash", "timestamp_utc",
)
_SPEEDUP_COLUMNS = (
    "backend", "scalar_per_sec", "batch_per_sec", "batch_speedup",
    "adaptive_per_sec", "ingest_path",
)
_CELL_COLUMNS = (
    "policy", "backend", "alpha", "k", "growth", "updates_per_sec",
    "seconds_median", "max_error", "rel_error", "space_bytes", "decrements",
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem;
       color: #1a1a1a; padding: 0 1rem; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 13px; }
th, td { border: 1px solid #d0d0d0; padding: 3px 9px; text-align: right; }
th { background: #f2f2f2; } td:first-child, th:first-child { text-align: left; }
.meta { color: #555; font-size: 13px; }
.ctitle { font: 600 14px system-ui, sans-serif; fill: #1a1a1a; }
.clabel { font: 12px system-ui, sans-serif; fill: #333; }
.ctick { font: 10.5px system-ui, sans-serif; fill: #555; }
.cempty { font: 13px system-ui, sans-serif; fill: #999; }
.cframe { fill: none; stroke: #bbb; }
.cgrid { stroke: #e8e8e8; }
svg { margin: 0.5rem 0; }
"""


def _short_git(value: str | None) -> str:
    return (value or "unknown")[:8]


def frontier_chart(results: ExperimentResults) -> str:
    """Accuracy-vs-space frontier SVG (log-log) from the latest run."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in results.frontier:
        series.setdefault(row["series"], []).append(
            (float(row["space_bytes"]), float(row["rel_error"]))
        )
    return svg_line_chart(
        series,
        title="Accuracy vs space (latest run; lower-left is better)",
        x_label="modeled space (bytes, log)",
        y_label="max error / stream weight (log)",
        log_x=True,
        log_y=True,
    )


def trajectory_chart(results: ExperimentResults) -> str:
    """Throughput-trajectory SVG across seed documents and run history."""
    trajectory = results.trajectory
    run_ids = trajectory.unique("run_id")
    labels = [
        run_id if str(run_id).startswith("seed:") else str(run_id)[:16]
        for run_id in run_ids
    ]
    series: dict[str, list[tuple[float, float]]] = {}
    for row in trajectory:
        index = run_ids.index(row["run_id"])
        series.setdefault(row["metric"], []).append(
            (float(index), float(row["updates_per_sec"]))
        )
    return svg_line_chart(
        series,
        title="Throughput trajectory (seed BENCH documents, then matrix runs)",
        x_label="run",
        y_label="updates/sec (log)",
        log_y=True,
        x_categories=labels,
    )


def render_markdown(results: ExperimentResults) -> str:
    """The whole report as one markdown document."""
    summary = results.summary
    host = summary.get("host") or {}
    lines = [
        f"# Bench report — {summary['name']}",
        "",
        f"- **git:** `{summary.get('git_hash') or 'unknown'}`",
        f"- **runs in history:** {summary['num_runs']}"
        f" ({summary['num_cells']} cells)",
        f"- **window:** {summary.get('started') or '-'} →"
        f" {summary.get('ended') or '-'}",
        f"- **ingest path:** {summary.get('ingest_path') or 'unknown'}",
        f"- **host:** {host.get('hostname', '?')}"
        f" ({host.get('platform', '?')}, {host.get('cpu_count', '?')} cpus)",
        f"- **seed documents:** BENCH_ingest.json"
        f" {'✓' if summary['has_seed_ingest'] else '✗'},"
        f" BENCH_serve.json {'✓' if summary['has_seed_serve'] else '✗'}",
        "",
        "## Throughput trajectory",
        "",
        markdown_table(results.trajectory, _TRAJECTORY_COLUMNS),
        "",
        "## Accuracy vs space frontier (latest run)",
        "",
        markdown_table(results.frontier, _FRONTIER_COLUMNS),
        "",
        "## Batch / native speedups (seed ingest trajectory)",
        "",
        markdown_table(results.speedups, _SPEEDUP_COLUMNS),
        "",
        "## Latest run cells",
        "",
        markdown_table(results.latest_cells, _CELL_COLUMNS),
        "",
    ]
    return "\n".join(lines)


def render_html(results: ExperimentResults) -> str:
    """The whole report as one self-contained HTML document."""
    summary = results.summary
    host = summary.get("host") or {}
    title = f"Bench report — {summary['name']}"
    meta = (
        f"git <code>{html.escape(_short_git(summary.get('git_hash')))}</code>"
        f" · {summary['num_runs']} runs / {summary['num_cells']} cells"
        f" · {html.escape(str(summary.get('started') or '-'))} →"
        f" {html.escape(str(summary.get('ended') or '-'))}"
        f" · ingest path {html.escape(str(summary.get('ingest_path') or '?'))}"
        f" · host {html.escape(str(host.get('hostname', '?')))}"
        f" ({html.escape(str(host.get('cpu_count', '?')))} cpus)"
    )
    sections = [
        "<!DOCTYPE html>",
        f'<html lang="en"><head><meta charset="utf-8"><title>{html.escape(title)}'
        f"</title><style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">{meta}</p>',
        "<h2>Throughput trajectory</h2>",
        trajectory_chart(results),
        html_table(results.trajectory, _TRAJECTORY_COLUMNS),
        "<h2>Accuracy vs space frontier</h2>",
        frontier_chart(results),
        html_table(results.frontier, _FRONTIER_COLUMNS),
        "<h2>Batch / native speedups (seed ingest trajectory)</h2>",
        html_table(results.speedups, _SPEEDUP_COLUMNS),
        "<h2>Latest run cells</h2>",
        html_table(results.latest_cells, _CELL_COLUMNS),
        "</body></html>",
    ]
    return "\n".join(sections)


def render_report(
    results: ExperimentResults, out_dir: str
) -> dict[str, str]:
    """Write ``report.html`` + ``report.md`` under ``out_dir``.

    Returns ``{"html": path, "markdown": path}``.
    """
    os.makedirs(out_dir, exist_ok=True)
    html_path = os.path.join(out_dir, "report.html")
    md_path = os.path.join(out_dir, "report.md")
    with open(html_path, "w", encoding="utf-8") as handle:
        handle.write(render_html(results))
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(results))
    return {"html": html_path, "markdown": md_path}
