"""Plain-text result tables, aligned the way the paper reports series."""

from __future__ import annotations

import math
from typing import Any, Iterable


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)  # "nan", "inf", "-inf" — never a format error
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


class ResultTable:
    """An ordered collection of result rows with aligned text rendering."""

    def __init__(self, title: str, columns: Iterable[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append one row; keys must be a subset of the declared columns."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)} for table {self.title!r}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def cell(self, match: dict[str, Any], column: str) -> Any:
        """The ``column`` value of the first row matching ``match``."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row.get(column)
        raise KeyError(f"no row matching {match} in table {self.title!r}")

    def to_text(self) -> str:
        """Render the table with a title bar and aligned columns."""
        header = self.columns
        body = [
            [_format_value(row.get(column, "")) for column in header]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        bar = "=" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [bar, self.title, bar]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
