"""Command-line entry point: ``python -m repro.bench <experiment>``.

Prints the requested experiment's tables to stdout and optionally
appends them to a report file.  ``all`` runs everything in paper order.

``python -m repro.bench report`` is the fuzzbench-style harness: it
executes the declared experiment matrix (:mod:`repro.bench.matrix`),
persists one provenance-stamped JSON document per run under
``bench_runs/``, and renders the HTML + markdown report
(:mod:`repro.bench.render`) over the whole run history plus the seed
``BENCH_*.json`` trajectories.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Iterable

from repro.bench import figures
from repro.bench.harness import SCALES
from repro.bench.report import ResultTable


def _fig1(config) -> Iterable[ResultTable]:
    return figures.fig1_runtime(config)


def _fig2(config) -> Iterable[ResultTable]:
    return figures.fig2_error(config)


def _fig3(config) -> Iterable[ResultTable]:
    return [figures.fig3_quantile_tradeoff(config)]


def _fig4(config) -> Iterable[ResultTable]:
    return [figures.fig4_merge(config)]


def _claims(config) -> Iterable[ResultTable]:
    return [figures.claims_table(config)]


def _space(config) -> Iterable[ResultTable]:
    return [figures.space_table()]


def _context(config) -> Iterable[ResultTable]:
    return [figures.context_table(config)]


def _bounds(config) -> Iterable[ResultTable]:
    return [figures.bounds_table(config)]


def _adversarial(config) -> Iterable[ResultTable]:
    return [figures.adversarial_table(config)]


def _batch(config) -> Iterable[ResultTable]:
    return [figures.batch_throughput_table(config)]


def _shard(config) -> Iterable[ResultTable]:
    return [figures.sharded_throughput_table(config)]


def _decay(config) -> Iterable[ResultTable]:
    return [figures.decay_throughput_table(config)]


def _serve(config) -> Iterable[ResultTable]:
    # The streaming-service throughput trajectory: also writes
    # BENCH_serve.json (the CI artifact next to BENCH_ingest.json).
    return [figures.serve_throughput_table(config, json_path="BENCH_serve.json")]


def _ingest_profile(config) -> Iterable[ResultTable]:
    # The canonical perf trajectory: also writes BENCH_ingest.json in the
    # working directory (the repo root in CI) for cross-PR comparison.
    return [figures.ingest_profile_table(config, json_path="BENCH_ingest.json")]


def _ablations(config) -> Iterable[ResultTable]:
    return [
        figures.ablation_policies(config),
        figures.ablation_sample_size(config),
        figures.ablation_backend(config),
        figures.ablation_merge_order(config),
    ]


EXPERIMENTS: dict[str, Callable] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "claims": _claims,
    "space": _space,
    "context": _context,
    "bounds": _bounds,
    "adversarial": _adversarial,
    "batch": _batch,
    "serve": _serve,
    "shard": _shard,
    "decay": _decay,
    "ingest-profile": _ingest_profile,
    "ablations": _ablations,
}


def run_header(experiment: str, scale: str) -> str:
    """The delimiter stamped above every ``--out`` append.

    Successive appends used to concatenate into one unattributable blob;
    the header ties each block of tables to the commit, the UTC instant
    and the workload scale that produced it.
    """
    from repro.bench.io import git_revision, utc_timestamp

    revision = git_revision()
    dirty = "+dirty" if revision["git_dirty"] else ""
    return (
        f"==== bench run: {experiment} | scale={scale} "
        f"| git {revision['git_hash'][:12]}{dirty} | {utc_timestamp()} ===="
    )


def _run_report(args, config, scale: str) -> int:
    """``bench report``: matrix run -> run document -> rendered report."""
    from repro.bench.matrix import matrix_for_scale, run_matrix
    from repro.bench.render import render_report
    from repro.bench.results import ExperimentResults

    spec = matrix_for_scale(scale)
    document, path = run_matrix(
        config,
        spec,
        scale=scale,
        runs_dir=args.runs_dir,
        progress=lambda line: print(line, file=sys.stderr),
    )
    table = ResultTable(
        f"Experiment matrix: {document['run_id']}"
        f" (git {document['git_hash'][:12]}, {document['timestamp_utc']})",
        [
            "policy", "backend", "alpha", "k", "growth",
            "updates_per_sec", "max_error", "space_bytes",
        ],
    )
    for cell in document["cells"]:
        table.add_row(
            **{column: cell[column] for column in table.columns}
        )
    print(table.to_text())
    print()
    results = ExperimentResults(runs_dir=args.runs_dir)
    paths = render_report(results, args.report_dir)
    print(f"run document: {path}")
    print(f"html report:  {paths['html']}")
    print(f"markdown:     {paths['markdown']}")
    if args.out:
        with open(args.out, "a") as fh:
            fh.write(run_header("report", scale) + "\n\n")
            fh.write(table.to_text() + "\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="which figure/table to regenerate, or 'report' for the "
        "experiment-matrix report harness",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="workload scale (default: quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --scale quick (the CI smoke-job invocation)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also append the tables to this file",
    )
    parser.add_argument(
        "--runs-dir",
        default="bench_runs",
        help="where 'report' persists and loads run documents",
    )
    parser.add_argument(
        "--report-dir",
        default=None,
        help="where 'report' renders report.html/report.md "
        "(default: <runs-dir>/report)",
    )
    args = parser.parse_args(argv)
    if args.quick and args.scale not in (None, "quick"):
        parser.error("--quick conflicts with --scale " + args.scale)
    scale = args.scale or "quick"
    config = SCALES[scale]
    if args.report_dir is None:
        args.report_dir = f"{args.runs_dir}/report"

    if args.experiment == "report":
        return _run_report(args, config, scale)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    chunks = []
    for name in names:
        for table in EXPERIMENTS[name](config):
            text = table.to_text()
            print(text)
            print()
            chunks.append(text)
    if args.out:
        with open(args.out, "a") as fh:
            fh.write(run_header(args.experiment, scale) + "\n\n")
            fh.write("\n\n".join(chunks) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
