"""The experiment harness: one runnable target per paper figure/table.

``python -m repro.bench <experiment>`` regenerates any of:

* ``fig1`` — runtime of SMED/SMIN/RBMC/MHE (equal counters + equal space)
* ``fig2`` — maximum error of the same four algorithms
* ``fig3`` — time and error vs the decrement quantile
* ``fig4`` — merge speed: Algorithm 5 vs ACH+13 vs Hoa61
* ``claims`` — the Section 4.3 in-text ratio claims
* ``space`` — the Section 2.3.3 / 4.5 space accounting table
* ``context`` — counter-based vs sketch algorithms (Section 1.3 premise)
* ``ablations`` — decrement policies, sample size ℓ, backend, merge order

Workload sizes default to laptop-Python scale; ``--scale paper`` raises
them (see :data:`repro.bench.harness.SCALES`).
"""

from repro.bench.harness import BenchConfig, SCALES, feed_stream, time_feed
from repro.bench.report import ResultTable

__all__ = ["BenchConfig", "SCALES", "feed_stream", "time_feed", "ResultTable"]
