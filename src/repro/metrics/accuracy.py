"""Error measurement against exact ground truth.

The paper's accuracy metric is the *maximum error* of any point estimate
(Figures 2 and 3); the theorems bound the one-sided error
``f_i - f̂_i`` by residual-tail quantities.  These helpers compute both
and check the bounds mechanically, so tests and benchmarks share one
definition.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.errors import InvalidParameterError
from repro.streams.exact import ExactCounter
from repro.types import ItemId

#: Anything that maps an item to an estimated frequency.
EstimateFn = Callable[[ItemId], float]


def _estimator(summary) -> EstimateFn:
    if callable(summary):
        return summary
    return summary.estimate


def max_error(summary, exact: ExactCounter) -> float:
    """``max_i |f_i - f̂_i|`` over every item that appeared in the stream.

    Items never seen have exact frequency 0 and (for counter algorithms)
    estimate 0, so restricting to observed items loses nothing for the
    MG-family; for SS-style estimators the overestimate of absent items
    is a separate property tested elsewhere.
    """
    estimate = _estimator(summary)
    worst = 0.0
    for item, freq in exact.items():
        err = abs(freq - estimate(item))
        if err > worst:
            worst = err
    return worst


def max_underestimate(summary, exact: ExactCounter) -> float:
    """``max_i (f_i - f̂_i)`` — the one-sided error the theorems bound."""
    estimate = _estimator(summary)
    worst = 0.0
    for item, freq in exact.items():
        err = freq - estimate(item)
        if err > worst:
            worst = err
    return worst


def mean_absolute_error(summary, exact: ExactCounter) -> float:
    """Average ``|f_i - f̂_i|`` over distinct observed items."""
    estimate = _estimator(summary)
    if exact.num_items == 0:
        return 0.0
    total = sum(abs(freq - estimate(item)) for item, freq in exact.items())
    return total / exact.num_items


class BoundCheck(NamedTuple):
    """Outcome of a theorem-bound verification."""

    observed: float
    bound: float

    @property
    def holds(self) -> bool:
        return self.observed <= self.bound + 1e-9


def check_tail_bound(
    summary, exact: ExactCounter, j: int, k_star: float
) -> BoundCheck:
    """Check the Theorem 2/4 tail guarantee.

    ``max_i (f_i - f̂_i) <= N^res(j) / (k* - j)`` — ``k_star`` is the
    effective decrement rank (k/2 for MED with the default fraction, k/c
    for SMED per Theorem 4).
    """
    if j < 0 or j >= k_star:
        raise InvalidParameterError(f"need 0 <= j < k_star, got j={j}, k*={k_star}")
    observed = max_underestimate(summary, exact)
    bound = exact.residual_weight(j) / (k_star - j)
    return BoundCheck(observed, bound)


def check_merge_bound(
    summary, exact: ExactCounter, counter_sum: float, k_star: float
) -> BoundCheck:
    """Check the Theorem 5 merge guarantee.

    ``max_i (f_i - f̂_i) <= (N - C)/k*`` where ``C`` is the surviving
    counter mass of the merged summary (pass the sum of raw counters as
    ``counter_sum``).
    """
    if k_star <= 0:
        raise InvalidParameterError(f"k_star must be positive, got {k_star}")
    observed = max_underestimate(summary, exact)
    bound = (exact.total_weight - counter_sum) / k_star
    return BoundCheck(observed, bound)
