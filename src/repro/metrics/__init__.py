"""Measurement: accuracy, heavy-hitter quality, op counts, space models."""

from repro.metrics.accuracy import (
    check_merge_bound,
    check_tail_bound,
    max_error,
    mean_absolute_error,
)
from repro.metrics.heavy_hitters import hh_precision_recall
from repro.metrics.instrumentation import OpStats
from repro.metrics.space import space_model_bytes

__all__ = [
    "max_error",
    "mean_absolute_error",
    "check_tail_bound",
    "check_merge_bound",
    "hh_precision_recall",
    "OpStats",
    "space_model_bytes",
]
