"""Closed-form space models for every compared algorithm.

Following Section 2.3.3's accounting (8-byte identifiers, 8-byte counts,
2-byte probe states, arrays of length ``next_pow2(4k/3)``), these models
make the paper's "equal space" comparisons (Figures 1 and 2) concrete in
bytes.  The paper's qualitative claims encoded here:

* RBMC, SMED, and SMIN "all use the same amount of space (in bytes) for
  a given number of counters k" (Section 4.3) — one probing table.
* MED (Algorithm 3) needs "an extra k words of space ... during every
  DecrementCounters() operation" for the quickselect copy (Section 2.2).
* MHE "uses additional space owing to the need to maintain a min-heap
  data structure in addition to a hash table" (Section 4.3).
* The prior merge procedures "require allocating an additional hash
  table of capacity 2k ... as well as an extra hash table of capacity k"
  — 2.5x our merge's footprint (Section 4.5).
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.table.accounting import probing_table_bytes

#: Bytes per heap entry: 8 (item id) + 8 (count).
_HEAP_ENTRY_BYTES = 16
#: Bytes per hash-map entry for the heap's item -> position index.
_POSITION_ENTRY_BYTES = 12  # 8-byte key + 4-byte index


def space_model_bytes(algorithm: str, k: int) -> int:
    """Modeled bytes for ``algorithm`` configured with ``k`` counters.

    Known algorithms: ``smed``, ``smin``, ``rbmc``, ``med``, ``mhe``,
    ``mg``, ``ssl``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    name = algorithm.lower()
    table = probing_table_bytes(k)
    if name in ("smed", "smin", "rbmc", "mg", "sq"):
        return table
    if name == "med":
        # Quickselect scratch copy: k counter values of 8 bytes each.
        return table + 8 * k
    if name == "mhe":
        # Hash table + heap arrays + item->position index.
        return table + _HEAP_ENTRY_BYTES * k + _POSITION_ENTRY_BYTES * k
    if name == "ssl":
        # Stream Summary: per counter, a node with item, count and two
        # pointers, plus bucket nodes; conservatively 3 extra words.
        return table + 24 * k
    raise InvalidParameterError(f"unknown algorithm {algorithm!r}")


def counters_for_equal_space(algorithm: str, budget_bytes: int) -> int:
    """Largest ``k`` whose modeled footprint fits in ``budget_bytes``.

    Used to build the "equal space" panels: give every algorithm the
    same byte budget and let the leaner ones afford more counters.
    """
    if budget_bytes <= 0:
        raise InvalidParameterError(f"budget must be positive, got {budget_bytes}")
    low, high = 1, 1
    while space_model_bytes(algorithm, high) <= budget_bytes:
        high *= 2
        if high > 1 << 40:  # pragma: no cover - absurd budgets
            break
    if high == 1:
        return 1
    low = high // 2
    # Binary search the threshold in (low, high].
    while low + 1 < high:
        mid = (low + high) // 2
        if space_model_bytes(algorithm, mid) <= budget_bytes:
            low = mid
        else:
            high = mid
    return low


def merge_scratch_bytes(procedure: str, k: int) -> int:
    """Extra allocation a merge procedure needs beyond the two inputs.

    ``ours`` allocates nothing; ``ach13`` (sort-based) and ``hoa61``
    (quickselect-based) allocate a 2k-capacity addition table plus a
    k-capacity output summary (Section 4.5).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    name = procedure.lower()
    if name == "ours":
        return 0
    if name in ("ach13", "hoa61"):
        return probing_table_bytes(2 * k) + probing_table_bytes(k)
    raise InvalidParameterError(f"unknown merge procedure {procedure!r}")
