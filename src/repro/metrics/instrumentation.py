"""Hardware-independent operation counting.

The paper's speed results are driven by a handful of countable events:
how often ``DecrementCounters()`` runs, how many counters each pass
touches, and (for the min-heap baseline) how many sift steps heap
maintenance costs.  Every algorithm in this library maintains an
:class:`OpStats` so benchmarks can report these counts alongside wall
time — they are the part of the comparison that survives the move from
the paper's Java/C++ testbed to Python.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class OpStats:
    """Counters for the events that dominate streaming-update cost."""

    #: Stream updates processed (calls to ``update``).
    updates: int = 0
    #: Updates that found their item already holding a counter.
    hits: int = 0
    #: Fresh counter assignments.
    inserts: int = 0
    #: ``DecrementCounters()`` passes executed.
    decrements: int = 0
    #: Total counters examined across all decrement passes (Θ(k) each).
    counters_scanned: int = 0
    #: Counters freed (set non-positive) by decrement passes.
    counters_freed: int = 0
    #: Heap sift steps (min-heap implementations only).
    heap_sifts: int = 0
    #: Unit updates synthesized by reduce-to-unit-case wrappers.
    rtuc_expansions: int = 0
    #: Extra scratch words allocated (quickselect copies, merge buffers).
    scratch_words: int = 0

    def merge(self, other: "OpStats") -> "OpStats":
        """Accumulate another stats record into this one; returns self."""
        self.updates += other.updates
        self.hits += other.hits
        self.inserts += other.inserts
        self.decrements += other.decrements
        self.counters_scanned += other.counters_scanned
        self.counters_freed += other.counters_freed
        self.heap_sifts += other.heap_sifts
        self.rtuc_expansions += other.rtuc_expansions
        self.scratch_words += other.scratch_words
        return self

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for report tables."""
        return asdict(self)

    def decrements_per_update(self) -> float:
        """Average decrement passes per stream update (the key speed driver)."""
        if self.updates == 0:
            return 0.0
        return self.decrements / self.updates

    def amortized_scan_cost(self) -> float:
        """Average counters scanned per stream update."""
        if self.updates == 0:
            return 0.0
        return self.counters_scanned / self.updates
