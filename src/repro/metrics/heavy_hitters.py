"""Heavy-hitter report quality: precision, recall, and the (φ, ε) check."""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.errors import InvalidParameterError
from repro.streams.exact import ExactCounter
from repro.types import ItemId


class HHQuality(NamedTuple):
    """Precision/recall of a reported heavy-hitter set vs ground truth."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def hh_precision_recall(
    reported: Iterable[ItemId], exact: ExactCounter, phi: float
) -> HHQuality:
    """Compare a reported item set against the exact φ-heavy hitters."""
    if not 0.0 < phi <= 1.0:
        raise InvalidParameterError(f"phi must be in (0, 1], got {phi}")
    truth = set(exact.heavy_hitters(phi))
    got = set(reported)
    tp = len(truth & got)
    fp = len(got - truth)
    fn = len(truth - got)
    precision = tp / len(got) if got else 1.0
    recall = tp / len(truth) if truth else 1.0
    return HHQuality(precision, recall, tp, fp, fn)


def check_phi_epsilon(
    reported: Iterable[ItemId], exact: ExactCounter, phi: float, epsilon: float
) -> bool:
    """Verify the (φ, ε)-heavy-hitter contract of Section 1.2.

    Every item with ``f_i >= phi*N`` must be reported, and nothing with
    ``f_i < (phi - epsilon)*N`` may be.
    """
    if epsilon < 0 or epsilon > phi:
        raise InvalidParameterError(f"need 0 <= epsilon <= phi, got {epsilon}, {phi}")
    got = set(reported)
    n = exact.total_weight
    for item, freq in exact.items():
        if freq >= phi * n and item not in got:
            return False
    floor = (phi - epsilon) * n
    for item in got:
        if exact.frequency(item) < floor:
            return False
    return True
