"""Capacity planning: choose ``k`` from an error target.

Inverts the paper's guarantees so operators can size sketches instead of
guessing.  Given a target absolute error (or a (φ, ε) heavy-hitter
contract), the helpers return the smallest ``k`` whose worst-case bound
meets it — via Theorem 4's ``N/(k/c)`` for the SMED family, or Lemma 1's
``N/(k+1)`` for the exact-decrement family — and, when a workload sample
is available, the usually much smaller ``k`` that the tail bound
``N^res(j)/(k* − j)`` certifies on data of that shape.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError
from repro.streams.exact import ExactCounter

#: Theorem 3/4's conservative decrement-rank constant for SMED: k* = k/c.
SMED_KSTAR_FACTOR = 3.0


def k_for_error(
    total_weight: float, target_error: float, family: str = "smed"
) -> int:
    """Smallest ``k`` whose worst-case bound meets ``target_error``.

    ``family`` is ``"smed"`` (Theorem 4, k* = k/3) or ``"exact"``
    (Lemma 1 / RBMC / MED with k* = k/2-style guarantees folded to the
    conservative N/(k+1)).
    """
    if total_weight <= 0:
        raise InvalidParameterError(f"total_weight must be positive, got {total_weight}")
    if target_error <= 0:
        raise InvalidParameterError(f"target_error must be positive, got {target_error}")
    if family == "smed":
        # N / (k/3) <= target  =>  k >= 3N/target
        k = math.ceil(SMED_KSTAR_FACTOR * total_weight / target_error)
    elif family == "exact":
        # N / (k+1) <= target  =>  k >= N/target - 1
        k = math.ceil(total_weight / target_error) - 1
    else:
        raise InvalidParameterError(f"unknown family {family!r}")
    return max(2, k)


def k_for_phi_epsilon(phi: float, epsilon: float, family: str = "smed") -> int:
    """Smallest ``k`` honouring a (φ, ε) heavy-hitter contract.

    Every item with ``f >= phi*N`` must be reportable with false
    positives no lighter than ``(phi - epsilon)*N`` — i.e. the summary's
    maximum error must stay below ``epsilon * N``.
    """
    if not 0 < epsilon <= phi <= 1:
        raise InvalidParameterError(
            f"need 0 < epsilon <= phi <= 1, got epsilon={epsilon}, phi={phi}"
        )
    return k_for_error(1.0, epsilon, family)


def k_for_workload(
    sample: ExactCounter,
    target_error: float,
    family: str = "smed",
    max_k: int = 1 << 22,
) -> int:
    """Smallest ``k`` the *tail* bound certifies on a workload sample.

    Uses ``N^res(j)/(k* − j)`` minimized over ``j`` — on skewed data this
    is far smaller than the distribution-free answer because the heavy
    items' mass drops out of the numerator.  The returned ``k`` still
    carries a worst-case guarantee *for streams with this tail profile*;
    re-run when the workload shifts.
    """
    if target_error <= 0:
        raise InvalidParameterError(f"target_error must be positive, got {target_error}")
    if sample.total_weight <= 0:
        raise InvalidParameterError("the workload sample is empty")
    factor = SMED_KSTAR_FACTOR if family == "smed" else 1.0

    def bound_met(k: int) -> bool:
        k_star = k / factor
        # The bound is minimized over j; checking a geometric grid of j
        # is enough because N^res(j) is non-increasing in j.
        j = 0
        while j < k_star:
            if sample.residual_weight(j) / (k_star - j) <= target_error:
                return True
            j = max(j + 1, int(j * 1.5))
        return False

    low, high = 2, 4
    while high <= max_k and not bound_met(high):
        high *= 2
    if high > max_k:
        raise InvalidParameterError(
            f"no k <= {max_k} certifies error {target_error} on this workload"
        )
    low = max(2, high // 2)
    while low + 1 < high:
        mid = (low + high) // 2
        if bound_met(mid):
            high = mid
        else:
            low = mid
    return high if not bound_met(low) else low
