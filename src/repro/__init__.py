"""repro — frequent items in data streams, reproduced end to end.

A from-scratch Python implementation of *A High-Performance Algorithm
for Identifying Frequent Items in Data Streams* (Anderson, Bevin, Lang,
Liberty, Rhodes, Thaler — IMC 2017, arXiv:1705.07001): the optimized
weighted Misra-Gries sketch deployed in Apache DataSketches, every
baseline it is compared against, the merge procedure, the sketched
extensions, and a benchmark harness that regenerates each figure and
table of the paper's evaluation.

Quickstart
----------
>>> from repro import FrequentItemsSketch
>>> sketch = FrequentItemsSketch(max_counters=64, seed=7)
>>> for flow, packet_bytes in [(1, 1500), (2, 64), (1, 1500), (3, 576)]:
...     sketch.update(flow, packet_bytes)
>>> sketch.estimate(1)
3000.0
>>> [row.item for row in sketch.heavy_hitters(phi=0.5)]
[1]

For high-throughput ingestion, feed NumPy array batches instead — the
result is identical to the scalar loop, state for state:

>>> import numpy as np
>>> batched = FrequentItemsSketch(max_counters=64, backend="columnar", seed=7)
>>> batched.update_batch(np.array([1, 2, 1, 3], dtype=np.uint64),
...                      np.array([1500.0, 64.0, 1500.0, 576.0]))
>>> batched.estimate(1)
3000.0

Package map
-----------
- :mod:`repro.engine` — the shared ingest/query kernel
  (:class:`~repro.engine.kernel.SketchKernel` +
  :class:`~repro.engine.query.QueryEngine`) every sketch variant
  composes.
- :mod:`repro.core` — the paper's sketch (SMED/SMIN family), merging,
  serialization.
- :mod:`repro.baselines` — MG, Space Saving (heap + Stream Summary),
  RTUC, RBMC, MED, CountMin, CountSketch, Lossy Counting, Sticky
  Sampling, prior merge procedures.
- :mod:`repro.extensions` — sampling-based weighted frequent items,
  random-admission SS, hierarchical heavy hitters, streaming entropy,
  turnstile support.
- :mod:`repro.sharded` — sharded parallel ingestion with merge-on-query
  (:class:`~repro.sharded.sketch.ShardedFrequentItemsSketch`).
- :mod:`repro.service` — the always-on asyncio ingest service:
  micro-batching pipeline with backpressure, snapshot/WAL durability
  with bit-identical recovery, and a TCP line-protocol server
  (``python -m repro.service``).
- :mod:`repro.streams` — workload generators (synthetic CAIDA-like
  trace, Zipf), exact ground truth, IO, partitioning.
- :mod:`repro.table`, :mod:`repro.selection`, :mod:`repro.hashing`,
  :mod:`repro.prng` — the from-scratch substrates.
- :mod:`repro.metrics`, :mod:`repro.bench` — measurement and the
  figure/table harness (``python -m repro.bench all``).
"""

from repro._version import __version__
from repro.core.frequent_items import FrequentItemsSketch
from repro.core.merge import merge_linear, merge_pairwise_tree
from repro.core.policies import (
    DecrementPolicy,
    ExactKthLargestPolicy,
    GlobalMinPolicy,
    SampleQuantilePolicy,
)
from repro.core.row import ErrorType, HeavyHitterRow
from repro.engine.kernel import SketchKernel
from repro.engine.query import QueryEngine
from repro.errors import (
    IncompatibleSketchError,
    InvalidParameterError,
    InvalidUpdateError,
    ReproError,
    SerializationError,
    TableFullError,
)
from repro.errors import (
    ReadOnlyReplicaError,
    ReplicationError,
    ServiceClosedError,
)
from repro.extensions.decayed import DecayedFrequentItemsSketch
from repro.service.pipeline import IngestPipeline, PipelineConfig
from repro.service.server import StreamServer
from repro.service.snapshot import SnapshotManager
from repro.sharded.sketch import ShardedFrequentItemsSketch
from repro.streams.exact import ExactCounter
from repro.types import StreamUpdate

__all__ = [
    "__version__",
    "FrequentItemsSketch",
    "ShardedFrequentItemsSketch",
    "DecayedFrequentItemsSketch",
    "SketchKernel",
    "QueryEngine",
    "SampleQuantilePolicy",
    "ExactKthLargestPolicy",
    "GlobalMinPolicy",
    "DecrementPolicy",
    "ErrorType",
    "HeavyHitterRow",
    "StreamUpdate",
    "ExactCounter",
    "IngestPipeline",
    "PipelineConfig",
    "SnapshotManager",
    "StreamServer",
    "ServiceClosedError",
    "ReadOnlyReplicaError",
    "ReplicationError",
    "merge_linear",
    "merge_pairwise_tree",
    "ReproError",
    "InvalidParameterError",
    "InvalidUpdateError",
    "TableFullError",
    "SerializationError",
    "IncompatibleSketchError",
]
